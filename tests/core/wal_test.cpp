// Durable Cores: WAL record codecs, crash/replay recovery, reply write
// barriers, checkpoint truncation, and a crash-point sweep over the
// two-phase movement protocol (exactly-once across restarts).
#include "src/core/wal.h"

#include <gtest/gtest.h>

#include "src/net/formation.h"
#include "src/serial/frame.h"
#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::DecodeWalRecord;
using core::EncodeWalRecord;
using core::Wal;
using core::WalRecord;

class WalTest : public FargoTest {};

TEST_F(WalTest, EveryRecordKindRoundTrips) {
  const ComletId id{CoreId{3}, 41};
  const CoreId peer{9};

  WalRecord install;
  install.kind = core::kWalInstall;
  install.comlet = id;
  install.anchor_type = "test.Counter";
  install.image = {1, 2, 3};
  WalRecord got = DecodeWalRecord(EncodeWalRecord(install));
  EXPECT_EQ(got.kind, core::kWalInstall);
  EXPECT_EQ(got.comlet, id);
  EXPECT_EQ(got.anchor_type, "test.Counter");
  EXPECT_EQ(got.image, install.image);

  WalRecord state = install;
  state.kind = core::kWalState;
  got = DecodeWalRecord(EncodeWalRecord(state));
  EXPECT_EQ(got.kind, core::kWalState);
  EXPECT_EQ(got.image, state.image);

  WalRecord exec;
  exec.kind = core::kWalExec;
  exec.session = net::SessionKey{CoreId{4}, peer, 2, 9, 77};
  exec.reply_kind = static_cast<std::uint8_t>(net::MessageKind::kInvokeReply);
  exec.reply = {9, 9};
  got = DecodeWalRecord(EncodeWalRecord(exec));
  EXPECT_EQ(got.kind, core::kWalExec);
  EXPECT_EQ(got.session, exec.session);
  EXPECT_EQ(got.reply_kind, exec.reply_kind);
  EXPECT_EQ(got.reply, exec.reply);

  WalRecord bind;
  bind.kind = core::kWalBind;
  bind.name = "msg";
  bind.handle = ComletHandle{id, peer, "test.Message"};
  got = DecodeWalRecord(EncodeWalRecord(bind));
  EXPECT_EQ(got.kind, core::kWalBind);
  EXPECT_EQ(got.name, "msg");
  EXPECT_EQ(got.handle.id, id);
  EXPECT_EQ(got.handle.last_known, peer);

  WalRecord tracker;
  tracker.kind = core::kWalTracker;
  tracker.comlet = id;
  tracker.next = peer;
  tracker.anchor_type = "test.Counter";
  got = DecodeWalRecord(EncodeWalRecord(tracker));
  EXPECT_EQ(got.kind, core::kWalTracker);
  EXPECT_EQ(got.next, peer);

  WalRecord dir_publish;
  dir_publish.kind = core::kWalDirPublish;
  dir_publish.comlet = id;
  dir_publish.location = peer;
  dir_publish.epoch = 7;
  dir_publish.as_of = 12345;
  got = DecodeWalRecord(EncodeWalRecord(dir_publish));
  EXPECT_EQ(got.kind, core::kWalDirPublish);
  EXPECT_EQ(got.location, peer);
  EXPECT_EQ(got.epoch, 7u);
  EXPECT_EQ(got.as_of, 12345);

  WalRecord meta;
  meta.kind = core::kWalMeta;
  meta.comlet_seq = 1u << 20;
  meta.correlation_seq = 1u << 21;
  meta.txn_seq = 1u << 22;
  got = DecodeWalRecord(EncodeWalRecord(meta));
  EXPECT_EQ(got.kind, core::kWalMeta);
  EXPECT_EQ(got.comlet_seq, meta.comlet_seq);
  EXPECT_EQ(got.correlation_seq, meta.correlation_seq);
  EXPECT_EQ(got.txn_seq, meta.txn_seq);

  WalRecord prepare;
  prepare.kind = core::kWalPrepare;
  prepare.txn = 5;
  prepare.primary = id;
  prepare.dest = peer;
  prepare.departing = {{id, "test.Counter"}};
  prepare.stream = {4, 5, 6, 7};
  got = DecodeWalRecord(EncodeWalRecord(prepare));
  EXPECT_EQ(got.kind, core::kWalPrepare);
  EXPECT_EQ(got.txn, 5u);
  EXPECT_EQ(got.primary, id);
  EXPECT_EQ(got.dest, peer);
  ASSERT_EQ(got.departing.size(), 1u);
  EXPECT_EQ(got.departing[0].first, id);
  EXPECT_EQ(got.departing[0].second, "test.Counter");
  EXPECT_EQ(got.stream, prepare.stream);

  WalRecord commit;
  commit.kind = core::kWalCommit;
  commit.txn = 5;
  got = DecodeWalRecord(EncodeWalRecord(commit));
  EXPECT_EQ(got.kind, core::kWalCommit);
  EXPECT_EQ(got.txn, 5u);

  WalRecord abort;
  abort.kind = core::kWalAbort;
  abort.txn = 6;
  got = DecodeWalRecord(EncodeWalRecord(abort));
  EXPECT_EQ(got.kind, core::kWalAbort);
  EXPECT_EQ(got.txn, 6u);

  WalRecord movein;
  movein.kind = core::kWalMoveIn;
  movein.peer = peer;
  movein.txn = 7;
  got = DecodeWalRecord(EncodeWalRecord(movein));
  EXPECT_EQ(got.kind, core::kWalMoveIn);
  EXPECT_EQ(got.peer, peer);
  EXPECT_EQ(got.txn, 7u);

  WalRecord moveinack;
  moveinack.kind = core::kWalMoveInAck;
  moveinack.peer = peer;
  moveinack.txn = 7;
  got = DecodeWalRecord(EncodeWalRecord(moveinack));
  EXPECT_EQ(got.kind, core::kWalMoveInAck);
  EXPECT_EQ(got.peer, peer);
  EXPECT_EQ(got.txn, 7u);

  WalRecord movedead;
  movedead.kind = core::kWalMoveDead;
  movedead.peer = peer;
  movedead.txn = 8;
  got = DecodeWalRecord(EncodeWalRecord(movedead));
  EXPECT_EQ(got.kind, core::kWalMoveDead);
  EXPECT_EQ(got.peer, peer);
  EXPECT_EQ(got.txn, 8u);

  WalRecord remove;
  remove.kind = core::kWalRemove;
  remove.comlet = id;
  remove.peer = peer;
  remove.anchor_type = "test.Counter";
  got = DecodeWalRecord(EncodeWalRecord(remove));
  EXPECT_EQ(got.kind, core::kWalRemove);
  EXPECT_EQ(got.comlet, id);
  EXPECT_EQ(got.peer, peer);
}

TEST_F(WalTest, DurableCoreRecoversStateNamesAndIdentity) {
  auto cores = MakeCores(2);
  cores[0]->EnableWal();
  auto counter = cores[0]->New<Counter>();
  counter.Call("increment", {Value(41)});
  auto msg = cores[0]->New<Message>("durable");
  cores[0]->BindName("msg", msg);
  rt.RunUntilIdle();  // let the write barriers settle

  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();

  EXPECT_TRUE(cores[0]->repository().Contains(counter.target()));
  EXPECT_TRUE(cores[0]->repository().Contains(msg.target()));
  auto ref = cores[0]->RefTo<Counter>(
      ComletHandle{counter.target(), cores[0]->id(), "test.Counter"});
  EXPECT_EQ(ref.Invoke<std::int64_t>("get"), 41);
  auto named = cores[0]->naming().Lookup("msg");
  ASSERT_TRUE(named.has_value());
  EXPECT_EQ(named->id, msg.target());
  EXPECT_GE(cores[0]->wal()->recoveries(), 1u);
}

TEST_F(WalTest, NonDurableRestartComesUpEmpty) {
  auto cores = MakeCores(1);
  auto counter = cores[0]->New<Counter>();
  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();
  EXPECT_TRUE(cores[0]->alive());
  EXPECT_FALSE(cores[0]->repository().Contains(counter.target()));
  EXPECT_EQ(cores[0]->repository().size(), 0u);
}

TEST_F(WalTest, RestartFiresRecoveredEventAndCountsIt) {
  auto cores = MakeCores(1);
  cores[0]->EnableWal();
  int recovered = 0;
  cores[0]->events().Listen(monitor::EventKind::kCoreRecovered,
                            [&recovered](const monitor::Event&) { ++recovered; });
  rt.RunUntilIdle();
  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();
  EXPECT_EQ(recovered, 1);
  EXPECT_EQ(rt.metrics().CounterValue("recovery.count"), 1u);
}

TEST_F(WalTest, IdentitiesRestartAboveTheDurableCeiling) {
  // A recovered Core must never re-mint a ComletId a peer may have seen:
  // fresh identities jump past the durable ceiling.
  auto cores = MakeCores(1);
  cores[0]->EnableWal();
  auto before = cores[0]->New<Counter>();
  rt.RunUntilIdle();
  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();
  auto after = cores[0]->New<Counter>();
  EXPECT_GT(after.target().seq, before.target().seq + 60000);
}

TEST_F(WalTest, ReplyIsWithheldUntilTheExecutionIsDurable) {
  // Host crashes after executing but before the exec record's fsync: the
  // reply was never released, the execution rolls back, and the client's
  // retry re-executes on the recovered Core — observable exactly once.
  auto cores = MakeCores(2);
  rt.storage().SetFsyncLatency(Millis(50));
  cores[0]->EnableWal();
  auto counter = cores[0]->New<Counter>();
  rt.RunUntilIdle();

  core::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = Millis(40);
  cores[1]->SetRetryPolicy(policy);
  cores[1]->SetRpcTimeout(Millis(120));

  auto stub = cores[1]->RefTo<Counter>(counter.handle());
  sim::Future<std::int64_t> f = stub.InvokeAsync<std::int64_t>("increment");
  // Request arrives ~5ms in; its barrier would settle ~55ms in. Crash at
  // 20ms: executed, not yet durable, reply withheld.
  rt.RunFor(Millis(20));
  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();

  ASSERT_TRUE(f.settled());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value(), 1);
  auto ref = cores[0]->RefTo<Counter>(
      ComletHandle{counter.target(), cores[0]->id(), "test.Counter"});
  EXPECT_EQ(ref.Invoke<std::int64_t>("get"), 1);  // once, not twice
}

TEST_F(WalTest, CheckpointTruncatesTheLogAndRecoveryStillWorks) {
  auto cores = MakeCores(1);
  Wal& wal = cores[0]->EnableWal(Millis(100));
  auto counter = cores[0]->New<Counter>();
  for (int i = 0; i < 40; ++i) {
    counter.Call("increment");
    rt.RunFor(Millis(25));
  }
  rt.RunUntilIdle();
  EXPECT_GE(wal.checkpoints(), 4u);
  // Truncation really happened: far fewer durable records than appends.
  EXPECT_LT(wal.durable_records(), wal.records_appended() / 2);

  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();
  auto ref = cores[0]->RefTo<Counter>(
      ComletHandle{counter.target(), cores[0]->id(), "test.Counter"});
  EXPECT_EQ(ref.Invoke<std::int64_t>("get"), 40);
}

TEST_F(WalTest, TxnIdsRestartAboveTheCeilingAfterCheckpoint) {
  // Checkpoints truncate the resolved Prepare/Commit records a txn counter
  // could be rebuilt from; the ceiling must survive in the sidecar kMeta so
  // a restarted source never reuses a txn id a destination's move-in set
  // still remembers (a reuse would turn an in-doubt abort into a false
  // commit).
  auto cores = MakeCores(2);
  cores[0]->EnableWal();
  cores[1]->EnableWal();
  auto counter = cores[0]->New<Counter>();
  rt.RunUntilIdle();
  cores[0]->MoveAsync(counter, cores[1]->id());
  rt.RunUntilIdle();

  Wal& wal = *cores[0]->wal();
  const std::uint64_t seen = wal.NextTxnId();  // >= every txn a peer saw
  wal.Checkpoint();
  rt.RunUntilIdle();
  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();
  EXPECT_GT(cores[0]->wal()->NextTxnId(), seen);
}

TEST_F(WalTest, MoveInMarksArePrunedOnceTheSourceCommitIsDurable) {
  // The destination's move-in set anchors in-doubt resolution, but a mark
  // only matters while the source could still ask. After the source's
  // commit record is durable it acks (kCtrlMoveAck) and the mark is
  // dropped — and the drop is logged, so a destination restart converges
  // on the pruned set rather than resurrecting it.
  auto cores = MakeCores(2);
  cores[0]->EnableWal();
  cores[1]->EnableWal();
  auto counter = cores[0]->New<Counter>();
  rt.RunUntilIdle();
  cores[0]->MoveAsync(counter, cores[1]->id());
  rt.RunUntilIdle();

  EXPECT_TRUE(cores[1]->repository().Contains(counter.target()));
  EXPECT_TRUE(cores[1]->movement().move_ins().empty());

  cores[1]->Crash();
  cores[1]->Restart();
  rt.RunUntilIdle();
  EXPECT_TRUE(cores[1]->movement().move_ins().empty());
}

TEST_F(WalTest, RecoveryQueryOvertakingTheMoveStreamPlantsATombstone) {
  // The in-doubt race: the source crashes just after sending its move
  // stream, restarts, and its recovery query overtakes the still-in-flight
  // stream (the network reorders arbitrarily). The destination's "not
  // installed" answer must also durably promise "and I never will" — when
  // the stream finally lands it has to be rejected, or the reinstalled
  // source copy would be silently duplicated (and whichever copy later
  // loses a collapse race takes its applied operations with it).
  auto cores = MakeCores(2);
  cores[0]->EnableWal();
  cores[1]->EnableWal();
  auto counter = cores[0]->New<Counter>();
  counter.Call("increment", {Value(7)});
  rt.RunUntilIdle();

  rt.network().SetLinkOneWay(cores[0]->id(), cores[1]->id(),
                             net::LinkModel{Millis(80), 1.25e6, true});
  cores[0]->MoveAsync(counter, cores[1]->id());
  rt.RunFor(Millis(5));  // prepare durable, stream in flight (80ms away)
  cores[0]->Crash();
  rt.network().SetLinkOneWay(cores[0]->id(), cores[1]->id(),
                             net::LinkModel{Millis(5), 1.25e6, true});
  cores[0]->Restart();  // the query overtakes the stream on the fast link
  rt.RunUntilIdle();

  EXPECT_TRUE(cores[0]->repository().Contains(counter.target()));
  EXPECT_FALSE(cores[1]->repository().Contains(counter.target()));
  auto ref = cores[0]->RefTo<Counter>(
      ComletHandle{counter.target(), cores[0]->id(), "test.Counter"});
  EXPECT_EQ(ref.Invoke<std::int64_t>("get"), 7);
}

TEST_F(WalTest, RequestsWaitForTheIdentityBarrier) {
  // A durable Core may not expose a freshly minted correlation before the
  // kMeta promising its ceiling is durable — otherwise a crash could lose
  // the promise and recovery could re-issue a correlation this peer has
  // already cached a reply under. The request parks in SendAsync until the
  // barrier settles.
  auto cores = MakeCores(2);
  auto counter = cores[1]->New<Counter>();
  rt.RunUntilIdle();

  rt.storage().SetFsyncLatency(Millis(50));
  cores[0]->EnableWal();
  auto stub = cores[0]->RefTo<Counter>(counter.handle());
  sim::Future<std::int64_t> f = stub.InvokeAsync<std::int64_t>("increment");
  // Without the gate the reply lands ~10ms in; the identity barrier holds
  // the request until the ~50ms fsync.
  rt.RunFor(Millis(40));
  EXPECT_FALSE(f.settled());
  rt.RunUntilIdle();
  ASSERT_TRUE(f.settled());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value(), 1);
}

// ---- Sessions × durability --------------------------------------------------
//
// The replay window is volatile; the WAL exec records are its durable twin,
// keyed by the same (session, slot, seq). These tests pin the interaction:
// a recovered executor must re-derive its slot state from the log and
// answer late duplicates without re-executing, a crash must take unsent
// formation frames with it, and recovery traffic must never sit behind a
// formation deadline.

TEST_F(WalTest, RecoveredExecutorAnswersRetriesFromWalWithoutReexecution) {
  // Mid-session crash: the first attempt executes and its exec record (with
  // the session key) becomes durable, but every reply is lost. The host then
  // crashes. The client's retry — same slot, same seq — reaches the
  // RECOVERED host, whose replay window was rebuilt from the WAL: it must
  // answer from the rebuilt slot, not execute the op a second time.
  auto cores = MakeCores(2);
  cores[0]->EnableWal();
  auto ledger = cores[0]->New<OpLedger>();
  rt.RunUntilIdle();

  core::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = Millis(150);
  cores[1]->SetRetryPolicy(policy);
  cores[1]->SetRpcTimeout(Millis(60));

  // Kill the reply direction only: requests arrive, answers vanish.
  rt.network().SetLinkOneWay(cores[0]->id(), cores[1]->id(),
                             net::LinkModel{Millis(5), 1.25e6, false});
  auto stub = cores[1]->RefTo<OpLedger>(ledger.handle());
  sim::Future<std::int64_t> f =
      stub.InvokeAsync<std::int64_t>("apply", std::int64_t{1});
  rt.RunFor(Millis(100));  // executed + durable; reply dropped; retry pending
  cores[0]->Crash();
  cores[0]->Restart();
  rt.network().SetLinkOneWay(cores[0]->id(), cores[1]->id(),
                             net::LinkModel{Millis(5), 1.25e6, true});
  rt.RunUntilIdle();

  ASSERT_TRUE(f.settled());
  ASSERT_TRUE(f.ok()) << "retry against the recovered host failed";
  const auto* anchor =
      static_cast<const OpLedger*>(cores[0]->repository().Get(
          ledger.target()).get());
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(anchor->total(), 1);
  EXPECT_EQ(anchor->dups(), 0) << "recovery re-executed a logged request";
  // The answer really came out of the rebuilt window.
  EXPECT_GT(cores[0]->replay().replays(), 0u);
}

TEST_F(WalTest, CrashDropsQueuedFormationFramesAndEpochFencesTheRestart) {
  // Mid-batch crash: two oneway posts sit in the origin's formation queue
  // (the delay-0 flush has not run yet) when the origin dies. The frame
  // must die with it — nothing half-batched leaks onto the wire — and the
  // restarted origin opens a higher session epoch, so the executor's old
  // window is fenced rather than resurrected.
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  rt.RunUntilIdle();

  auto stub = cores[1]->RefTo<Counter>(counter.handle());
  stub.Post("increment");
  stub.Post("increment");
  EXPECT_GT(cores[1]->formation().queued(), 0u);
  cores[1]->Crash();  // before the flush task fires
  rt.RunUntilIdle();
  auto local = cores[0]->RefTo<Counter>(
      ComletHandle{counter.target(), cores[0]->id(), "test.Counter"});
  EXPECT_EQ(local.Invoke<std::int64_t>("get"), 0)
      << "a discarded formation frame reached the executor";

  cores[1]->Restart();
  rt.RunUntilIdle();
  auto stub2 = cores[1]->RefTo<Counter>(counter.handle());
  EXPECT_EQ(stub2.Invoke<std::int64_t>("increment"), 1);
}

TEST_F(WalTest, RecoveryTrafficIsNeverFormationFramed) {
  // Recovery queries block a restarting Core; replies to them block the
  // querier. Neither may wait out a batch deadline or ride inside a frame —
  // they go straight to the wire. Reuse the query-overtakes-stream scenario
  // (it reliably produces recovery traffic) with a tap that unwraps every
  // batch frame and flags any recovery message found inside one.
  auto cores = MakeCores(2);
  cores[0]->EnableWal();
  cores[1]->EnableWal();
  auto counter = cores[0]->New<Counter>();
  rt.RunUntilIdle();

  std::size_t raw_recovery = 0, framed_recovery = 0;
  rt.network().SetTap([&](const net::Message& m) {
    if (m.kind == net::MessageKind::kRecoveryQuery ||
        m.kind == net::MessageKind::kRecoveryReply) {
      ++raw_recovery;
      return;
    }
    if (m.kind != net::MessageKind::kBatch) return;
    serial::FrameReader frame(m.payload);
    while (frame.HasNext()) {
      serial::Reader item = frame.Next();
      const net::MessageKind kind = net::ReadBatchItem(item).kind;
      if (kind == net::MessageKind::kRecoveryQuery ||
          kind == net::MessageKind::kRecoveryReply)
        ++framed_recovery;
    }
  });

  cores[0]->MoveAsync(counter, cores[1]->id());
  rt.RunFor(Millis(5));  // prepare durable, stream in flight
  cores[0]->Crash();
  cores[0]->Restart();   // recovery queries the destination
  rt.RunUntilIdle();

  EXPECT_GT(raw_recovery, 0u) << "scenario produced no recovery traffic";
  EXPECT_EQ(framed_recovery, 0u)
      << "recovery traffic was delayed behind a formation frame";
}

// ---- Barrier-before-reply crash points --------------------------------------
//
// Two egress paths that historically bypassed the write barrier: the oneway
// slot ack and the directory lookup reply. Both advertise durable state to a
// peer, so both must ride behind the fsync of the records backing them.
// These tests crash the sender inside the volatile window and check that
// nothing escaped before the barrier would have settled.

/// Feeds `fn` every message on the wire, unwrapping batch frames.
template <typename Fn>
void TapUnframed(core::Runtime& rt, Fn fn) {
  rt.network().SetTap([fn = std::move(fn)](const net::Message& m) {
    if (m.kind != net::MessageKind::kBatch) {
      fn(m);
      return;
    }
    serial::FrameReader frame(m.payload);
    while (frame.HasNext()) {
      serial::Reader item = frame.Next();
      fn(net::ReadBatchItem(item));
    }
  });
}

TEST_F(WalTest, SlotAckIsWithheldUntilTheExecRecordIsDurable) {
  // The origin retires a oneway's slot lease when the executor's SlotAck
  // arrives. If the ack escaped while the exec record behind it was still
  // volatile, the executor could crash, forget the execution, and later
  // re-admit the origin's duplicate as fresh — the oneway runs twice.
  constexpr std::uint8_t kCtrlSlotAck = 6;  // control subkind (core.cpp)
  auto cores = MakeCores(2);
  rt.storage().SetFsyncLatency(Millis(50));
  cores[0]->EnableWal();
  auto counter = cores[0]->New<Counter>();
  rt.RunUntilIdle();

  std::size_t acks = 0;
  TapUnframed(rt, [&](const net::Message& m) {
    if (m.kind != net::MessageKind::kControl || m.payload.empty()) return;
    if (m.payload[0] == kCtrlSlotAck) ++acks;
  });

  auto stub = cores[1]->RefTo<Counter>(counter.handle());
  stub.Post("increment");
  // Delivered ~5ms in, executed, exec record appended; its barrier settles
  // ~55ms in. At 20ms the ack must still be parked behind the fsync.
  rt.RunFor(Millis(20));
  EXPECT_EQ(acks, 0u) << "slot ack escaped before the exec record was durable";

  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();
  // The execution never became durable and its ack never left, so recovery
  // rolling it back is consistent: nobody was told the oneway settled.
  EXPECT_EQ(acks, 0u) << "a parked ack leaked across the restart epoch";
  auto local = cores[0]->RefTo<Counter>(
      ComletHandle{counter.target(), cores[0]->id(), "test.Counter"});
  EXPECT_EQ(local.Invoke<std::int64_t>("get"), 0);

  // The recovered executor still serves oneways, and the ack now arrives —
  // after the barrier.
  stub.Post("increment");
  rt.RunUntilIdle();
  EXPECT_EQ(local.Invoke<std::int64_t>("get"), 1);
  EXPECT_GE(acks, 1u) << "recovered executor never acked the fresh oneway";
}

TEST_F(WalTest, DirectoryReplyIsWithheldUntilThePublishRecordIsDurable) {
  // A durable shard answers lookups from its store; the store is rebuilt
  // from kWalDirPublish records on restart. A reply that leaves before the
  // record's fsync advertises an epoch recovery may then forget — peers
  // would hold hints the authority no longer stands behind.
  auto cores = MakeCores(3);
  rt.storage().SetFsyncLatency(Millis(50));
  cores[0]->EnableWal();
  rt.EnableDirectory({cores[0]->id()});
  rt.RunUntilIdle();

  std::size_t replies = 0;
  TapUnframed(rt, [&](const net::Message& m) {
    if (m.kind == net::MessageKind::kDirectoryReply) ++replies;
  });

  // Install publishes epoch 1 to the shard (~5ms); the lookup lands just
  // after and reads the fresh, still-volatile record. Its reply must wait
  // out the publish record's barrier (~55ms).
  auto msg = cores[1]->New<Message>("beta");
  auto hint = cores[2]->directory().LookupAsync(msg.target());
  rt.RunFor(Millis(30));
  EXPECT_EQ(replies, 0u)
      << "directory reply escaped before the publish record was durable";

  cores[0]->Crash();
  cores[0]->Restart();
  rt.RunUntilIdle();
  // The publish never became durable: the recovered store must not know the
  // location — and critically, no reply ever claimed it did.
  EXPECT_EQ(cores[0]->directory().store().count(msg.target()), 0u);

  // Re-assert the location; a fresh lookup settles once the record is
  // durable, and only then.
  cores[1]->directory().Publish(msg.target(), cores[1]->id(), 1);
  rt.RunUntilIdle();
  auto again = cores[2]->directory().LookupAsync(msg.target());
  rt.RunUntilIdle();
  ASSERT_TRUE(again.settled());
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().found);
  EXPECT_EQ(again.value().location, cores[1]->id());
  EXPECT_GT(replies, 0u);
}

// ---- Movement crash-point sweep ---------------------------------------------
//
// Crash the source (or destination) of an in-flight move at every
// millisecond of the protocol's lifetime, restart it, and verify the
// complet exists exactly once with its state intact. Every durable prefix
// of the two-phase protocol must resolve consistently.

enum class CrashSide { kSource, kDest };

void RunMoveCrashPoint(SimTime crash_at, CrashSide side) {
  RegisterTestComlets();
  core::Runtime rt;
  core::Core& src = rt.CreateCore("src");
  core::Core& dst = rt.CreateCore("dst");
  rt.network().SetDefaultLink(net::LinkModel{Millis(5), 1.25e6, true});
  src.EnableWal();
  dst.EnableWal();

  auto counter = src.New<Counter>();
  counter.Call("increment", {Value(7)});
  rt.RunUntilIdle();

  src.MoveAsync(counter, dst.id());  // outcome doesn't matter; survival does
  rt.RunFor(crash_at);
  core::Core& victim = side == CrashSide::kSource ? src : dst;
  victim.Crash();
  victim.Restart();
  rt.RunUntilIdle();

  const int copies = (src.repository().Contains(counter.target()) ? 1 : 0) +
                     (dst.repository().Contains(counter.target()) ? 1 : 0);
  ASSERT_EQ(copies, 1) << "crash_at=" << crash_at << "ns lost or duplicated "
                       << "the complet";
  core::Core& host = src.repository().Contains(counter.target()) ? src : dst;
  auto ref = host.RefTo<Counter>(
      ComletHandle{counter.target(), host.id(), "test.Counter"});
  EXPECT_EQ(ref.Invoke<std::int64_t>("get"), 7)
      << "crash_at=" << crash_at << "ns corrupted the state";
}

TEST(WalMoveCrashSweepTest, SourceCrashAtEveryPointIsExactlyOnce) {
  for (SimTime at = Millis(1); at <= Millis(14); at += Millis(1))
    RunMoveCrashPoint(at, CrashSide::kSource);
}

TEST(WalMoveCrashSweepTest, DestCrashAtEveryPointIsExactlyOnce) {
  for (SimTime at = Millis(1); at <= Millis(14); at += Millis(1))
    RunMoveCrashPoint(at, CrashSide::kDest);
}

}  // namespace
}  // namespace fargo::testing
