// Movement protocol details: continuations with complet-reference
// arguments, itineraries driven by continuations, event ordering, stats.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

class MovementDetailTest : public FargoTest {};
// For workloads using the blocking in-handler idiom (Worker.work nests a
// synchronous Invoke); the locality engine rejects those by design.
class MovementDetailSimTest : public FargoSimTest {};

TEST_F(MovementDetailSimTest, ContinuationReceivesHandleArguments) {
  // The continuation gets a complet handle and can interact through it —
  // parameters pass by reference, degraded to link (§3.1).
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  auto worker = cores[0]->New<Worker>();
  auto data = cores[1]->New<Data>(std::size_t{50});
  (void)counter;
  // Move the worker, binding it to `data` on arrival via continuation.
  cores[0]->Move(worker, cores[1]->id(), "bind", {Value(data.handle())});
  rt.RunUntilIdle();
  EXPECT_TRUE(worker.Invoke<bool>("dataBound"));
  EXPECT_EQ(worker.Invoke<std::string>("refType"), "link");  // degraded
  EXPECT_EQ(worker.Invoke<std::int64_t>("work"), 50);
}

TEST_F(MovementDetailTest, ArrivalPrecedesDepartureInSimTime) {
  // The destination installs (fires arrived) before the sender commits and
  // releases the old copy (fires departed): compare local delivery times.
  auto cores = MakeCores(2);
  SimTime arrived_at = -1, departed_at = -1;
  cores[1]->events().Listen(monitor::EventKind::kComletArrived,
                            [&](const monitor::Event&) {
                              if (arrived_at < 0) arrived_at = rt.Now();
                            });
  cores[0]->events().Listen(monitor::EventKind::kComletDeparted,
                            [&](const monitor::Event&) {
                              departed_at = rt.Now();
                            });
  auto msg = cores[0]->New<Message>("m");
  cores[0]->Move(msg, cores[1]->id());
  rt.RunUntilIdle();
  ASSERT_GE(arrived_at, 0);
  ASSERT_GE(departed_at, 0);
  // Departure commits only after the destination's ack: strictly later.
  EXPECT_LT(arrived_at, departed_at);
}

TEST_F(MovementDetailTest, MoveStatsAreAccurate) {
  auto cores = MakeCores(2);
  cores[1]->New<Printer>();  // stamp target at destination
  auto worker = cores[0]->New<Worker>();
  auto pulled = cores[0]->New<Data>(std::size_t{100});
  worker.Call("bind", {Value(pulled.handle()), Value("pull")});
  auto node = cores[0]->New<Node>();
  node.Call("setNext", {Value(worker.handle()), Value("pull")});
  // node also stamps a printer? Node has one slot; use worker's stats only.
  cores[0]->Move(node, cores[1]->id());
  const core::MoveStats& s = cores[0]->movement().last_move_stats();
  EXPECT_EQ(s.complets_moved, 3u);        // node + worker + pulled data
  EXPECT_EQ(s.complets_duplicated, 0u);
  EXPECT_GE(s.refs_linked, 2u);           // the two pull edges
  EXPECT_EQ(s.refs_stamped, 0u);
  EXPECT_EQ(s.deferred_remote_pulls, 0u);
  EXPECT_GT(s.stream_bytes, 100u);
}

TEST_F(MovementDetailTest, ContinuationDrivenItinerary) {
  // A complet hops along an itinerary purely via arrival continuations
  // that issue the next self-move — the weak-mobility pattern of §3.3.
  auto cores = MakeCores(4);
  auto msg = cores[0]->New<Message>("tourist");
  // Drive: move to 1, then from 1 to 2, then 2 to 3, each as a
  // continuation chained by the test through the system move method.
  cores[0]->Move(msg, cores[1]->id(), "start", {Value("leg1")});
  rt.RunUntilIdle();
  msg.Call("__fargo.move",
           {Value(static_cast<std::int64_t>(cores[2]->id().value)),
            Value("start"), Value(Value::List{Value("leg2")})});
  rt.RunUntilIdle();
  msg.Call("__fargo.move",
           {Value(static_cast<std::int64_t>(cores[3]->id().value)),
            Value("start"), Value(Value::List{Value("leg3")})});
  rt.RunUntilIdle();
  EXPECT_TRUE(cores[3]->repository().Contains(msg.target()));
  auto anchor = std::dynamic_pointer_cast<Message>(
      cores[3]->repository().Get(msg.target()));
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(anchor->continuations(), 3);
  EXPECT_EQ(anchor->text(), "leg3");
}

TEST_F(MovementDetailTest, FailedContinuationDoesNotFailTheMove) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  // Unknown continuation method: the move itself still commits.
  cores[0]->Move(msg, cores[1]->id(), "no_such_method", {});
  rt.RunUntilIdle();
  EXPECT_TRUE(cores[1]->repository().Contains(msg.target()));
  EXPECT_EQ(msg.Invoke<std::string>("text"), "m");
}

TEST_F(MovementDetailTest, EmptyCompletMovesCheaply) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  cores[0]->Move(counter, cores[1]->id());
  EXPECT_LT(cores[0]->movement().last_move_stats().stream_bytes, 128u);
}

TEST_F(MovementDetailTest, BackToBackMovesOfTheSameComplet) {
  auto cores = MakeCores(3);
  auto counter = cores[0]->New<Counter>();
  cores[0]->Move(counter, cores[1]->id());
  cores[1]->MoveId(counter.target(), cores[2]->id());
  cores[2]->MoveId(counter.target(), cores[0]->id());
  EXPECT_TRUE(cores[0]->repository().Contains(counter.target()));
  EXPECT_EQ(counter.Invoke<std::int64_t>("increment"), 1);
}

TEST_F(MovementDetailTest, MovedCompletKeepsItsMethodMap) {
  // The method map is rebuilt by the anchor's constructor at the
  // destination; a full introspection round trip proves it.
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  Value before = msg.Call("__fargo.methods");
  cores[0]->Move(msg, cores[1]->id());
  Value after = msg.Call("__fargo.methods");
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace fargo::testing
