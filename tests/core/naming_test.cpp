// Naming service unit tests + the components the stamp rebinding relies on.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

TEST(NamingUnitTest, BindLookupUnbind) {
  core::Naming naming;
  ComletHandle h{ComletId{CoreId{1}, 2}, CoreId{1}, "T"};
  naming.Bind("a", h);
  ASSERT_TRUE(naming.Lookup("a").has_value());
  EXPECT_EQ(naming.Lookup("a")->id, h.id);
  EXPECT_FALSE(naming.Lookup("b").has_value());
  naming.Unbind("a");
  EXPECT_FALSE(naming.Lookup("a").has_value());
  EXPECT_EQ(naming.size(), 0u);
}

TEST(NamingUnitTest, RebindReplaces) {
  core::Naming naming;
  naming.Bind("x", ComletHandle{ComletId{CoreId{1}, 1}, CoreId{1}, "T"});
  naming.Bind("x", ComletHandle{ComletId{CoreId{1}, 2}, CoreId{1}, "T"});
  EXPECT_EQ(naming.Lookup("x")->id.seq, 2u);
  EXPECT_EQ(naming.size(), 1u);
}

TEST(NamingUnitTest, AllIsSorted) {
  core::Naming naming;
  naming.Bind("zeta", ComletHandle{ComletId{CoreId{1}, 1}, CoreId{1}, "T"});
  naming.Bind("alpha", ComletHandle{ComletId{CoreId{1}, 2}, CoreId{1}, "T"});
  auto all = naming.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "alpha");
  EXPECT_EQ(all[1].first, "zeta");
}

class NamingCoreTest : public FargoTest {};

TEST_F(NamingCoreTest, FindByTypeIsDeterministic) {
  auto cores = MakeCores(1);
  auto p2 = cores[0]->New<Printer>();
  auto p1 = cores[0]->New<Printer>();
  // Smallest ComletId wins regardless of creation/iteration order.
  auto found = cores[0]->repository().FindByType("test.Printer");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id(), std::min(p1.target(), p2.target()));
}

TEST_F(NamingCoreTest, BindingUnboundRefThrows) {
  auto cores = MakeCores(1);
  core::ComletRefBase unbound;
  EXPECT_THROW(cores[0]->BindName("x", unbound), FargoError);
}

TEST_F(NamingCoreTest, LookupAtDeadCoreTimesOut) {
  auto cores = MakeCores(2);
  cores[1]->Crash();
  cores[0]->SetRpcTimeout(Millis(100));
  EXPECT_THROW(cores[0]->LookupAt(cores[1]->id(), "x"), UnreachableError);
}

TEST_F(NamingCoreTest, NamesAreIndependentPerCore) {
  auto cores = MakeCores(2);
  auto a = cores[0]->New<Message>("a");
  auto b = cores[1]->New<Message>("b");
  cores[0]->BindName("thing", a);
  cores[1]->BindName("thing", b);
  EXPECT_EQ(cores[0]->LookupAt(cores[0]->id(), "thing")->id, a.target());
  EXPECT_EQ(cores[0]->LookupAt(cores[1]->id(), "thing")->id, b.target());
}

TEST_F(NamingCoreTest, NameResolutionPlusChainReachesMovedComplet) {
  // The §1 pattern: "reconnect a reference to a moved object on-demand,
  // using an external location and naming facility".
  auto cores = MakeCores(3);
  auto svc = cores[0]->New<Counter>();
  cores[0]->BindName("service", svc);
  cores[0]->Move(svc, cores[1]->id());
  cores[1]->MoveId(svc.target(), cores[2]->id());
  // A newcomer resolves the name at the well-known core and calls through.
  auto handle = cores[2]->LookupAt(cores[0]->id(), "service");
  ASSERT_TRUE(handle.has_value());
  auto ref = cores[2]->RefFromHandle(*handle);
  EXPECT_EQ(ref.Call("increment").AsInt(), 1);
}

class IdsTest : public ::testing::Test {};

TEST_F(IdsTest, ValidityAndOrdering) {
  EXPECT_FALSE(CoreId{}.valid());
  EXPECT_TRUE(CoreId{1}.valid());
  EXPECT_FALSE(ComletId{}.valid());
  EXPECT_TRUE((ComletId{CoreId{1}, 0}).valid());
  EXPECT_LT((ComletId{CoreId{1}, 5}), (ComletId{CoreId{2}, 0}));
  EXPECT_LT((ComletId{CoreId{1}, 5}), (ComletId{CoreId{1}, 6}));
}

TEST_F(IdsTest, ToStringFormats) {
  EXPECT_EQ(ToString(CoreId{7}), "core:7");
  EXPECT_EQ(ToString(ComletId{CoreId{2}, 9}), "c2.9");
}

TEST_F(IdsTest, HashingSpreadsDistinctIds) {
  std::hash<ComletId> h;
  std::set<std::size_t> hashes;
  for (std::uint32_t core = 1; core < 20; ++core)
    for (std::uint64_t seq = 0; seq < 50; ++seq)
      hashes.insert(h(ComletId{CoreId{core}, seq}));
  EXPECT_EQ(hashes.size(), 19u * 50u);  // no collisions on this small set
}

}  // namespace
}  // namespace fargo::testing
