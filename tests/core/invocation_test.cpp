// Invocation unit details: parameter kinds over the wire, nesting,
// one-way invocations, hop limits, and concurrency interleaving.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::ComletRef;

class InvocationTest : public FargoTest {};
// Nested *synchronous* invocations block inside an executor handler — a
// sim-only idiom (the locality engine requires non-blocking handlers).
class InvocationSimTest : public FargoSimTest {};

/// Echo anchor: returns its arguments, used to round-trip every Value kind
/// through the full wire path.
class Echo : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.Echo";
  Echo() {
    methods().Register("echo", [](const std::vector<Value>& args) {
      return Value(Value::List(args.begin(), args.end()));
    });
    methods().Register("callOther", [this](const std::vector<Value>& args) {
      // Nested invocation: call `method` on the handle we received.
      auto other = core()->RefFromHandle(args.at(0).AsHandle());
      return other.Call(args.at(1).AsString());
    });
    methods().Register("selfCall", [this](const std::vector<Value>&) {
      // Re-entrant local dispatch through the Core.
      return core()->DispatchLocal(id(), "echo", {Value(1)});
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter&) const override {}
  void Deserialize(serial::GraphReader&) override {}
};

const bool kEchoReg = serial::RegisterType<Echo>();

TEST_F(InvocationTest, EveryValueKindCrossesTheWire) {
  (void)kEchoReg;
  auto cores = MakeCores(2);
  auto echo = cores[0]->New<Echo>();
  auto remote = cores[1]->RefTo<Echo>(echo.handle());

  Value::Map map;
  map["k"] = Value(1);
  std::vector<Value> args = {
      Value(),
      Value(true),
      Value(std::int64_t{-7}),
      Value(3.5),
      Value("text"),
      Value(std::vector<std::uint8_t>{1, 2, 3}),
      Value(Value::List{Value(1), Value("x")}),
      Value(std::move(map)),
      Value(echo.handle()),
      Value(ObjectBlob{"test.TreeNode", {0, 1}}),
  };
  Value result = remote.Call("echo", args);
  ASSERT_TRUE(result.IsList());
  EXPECT_EQ(result.AsList(), args);
}

TEST_F(InvocationTest, LargeArgumentsSurvive) {
  auto cores = MakeCores(2);
  auto echo = cores[0]->New<Echo>();
  auto remote = cores[1]->RefTo<Echo>(echo.handle());
  std::string big(1 << 20, 'z');
  Value result = remote.Call("echo", {Value(big)});
  EXPECT_EQ(result.AsList().at(0).AsString(), big);
}

TEST_F(InvocationSimTest, NestedCrossCoreInvocations) {
  // core2 calls echo@core0, whose handler calls a counter@core1.
  auto cores = MakeCores(3);
  auto echo = cores[0]->New<Echo>();
  auto counter = cores[1]->New<Counter>();
  auto remote = cores[2]->RefTo<Echo>(echo.handle());
  Value v = remote.Call("callOther",
                        {Value(counter.handle()), Value("increment")});
  EXPECT_EQ(v.AsInt(), 1);
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);
}

TEST_F(InvocationTest, ReentrantSelfDispatch) {
  auto cores = MakeCores(1);
  auto echo = cores[0]->New<Echo>();
  Value v = echo.Call("selfCall");
  EXPECT_EQ(v.AsList().at(0).AsInt(), 1);
}

TEST_F(InvocationTest, PostIsAsynchronousLocally) {
  auto cores = MakeCores(1);
  auto counter = cores[0]->New<Counter>();
  counter.Post("increment");
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 0);  // not yet dispatched
  rt.RunUntilIdle();
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);
}

TEST_F(InvocationTest, PostReachesRemoteTargets) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  auto remote = cores[1]->RefTo<Counter>(counter.handle());
  for (int i = 0; i < 5; ++i) remote.Post("increment");
  rt.RunUntilIdle();
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 5);
}

TEST_F(InvocationTest, PostTracksMovedTargets) {
  auto cores = MakeCores(3);
  auto counter = cores[0]->New<Counter>();
  auto remote = cores[2]->RefTo<Counter>(counter.handle());
  cores[0]->Move(counter, cores[1]->id());
  remote.Post("increment");  // forwards through the chain
  rt.RunUntilIdle();
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);
}

TEST_F(InvocationTest, PostErrorsAreSwallowed) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  auto remote = cores[1]->RefTo<Counter>(counter.handle());
  remote.Post("no_such_method");  // must not throw, ever
  rt.RunUntilIdle();
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 0);
}

TEST_F(InvocationTest, MaxHopLimitBreaksRoutingLoops) {
  // Manufacture a routing loop: two cores' trackers point at each other.
  auto cores = MakeCores(3);
  auto msg = cores[0]->New<Message>("m");
  ComletId ghost{cores[0]->id(), 999};  // never hosted anywhere
  cores[0]->trackers().SetForward(ghost, cores[1]->id(), "test.Message");
  cores[1]->trackers().SetForward(ghost, cores[0]->id(), "test.Message");
  auto ghost_ref = cores[0]->RefFromHandle(
      ComletHandle{ghost, cores[1]->id(), "test.Message"});
  cores[0]->SetRpcTimeout(Seconds(5));
  cores[0]->invocation().SetMaxHops(8);
  try {
    ghost_ref.Call("text");
    FAIL() << "expected an error";
  } catch (const FargoError& e) {
    EXPECT_NE(std::string(e.what()).find("hops"), std::string::npos);
  }
  (void)msg;
}

TEST_F(InvocationTest, InterleavedClientsShareOneServer) {
  // Many clients on different cores hammer one counter; every increment is
  // serialized by the single-threaded target core and none is lost.
  auto cores = MakeCores(5);
  auto counter = cores[0]->New<Counter>();
  std::vector<ComletRef<Counter>> clients;
  for (int i = 1; i < 5; ++i)
    clients.push_back(cores[static_cast<std::size_t>(i)]->RefTo<Counter>(
        counter.handle()));
  for (int round = 0; round < 25; ++round)
    for (auto& c : clients) c.Post("increment");
  rt.RunUntilIdle();
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 100);
}

TEST_F(InvocationTest, HopCountAndLocationTelemetry) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  core::InvokeResult local =
      cores[0]->invocation().Invoke(msg.handle(), "text", {});
  EXPECT_EQ(local.hops, 0);
  EXPECT_EQ(local.location, cores[0]->id());
  auto remote_ref = cores[1]->RefTo<Message>(msg.handle());
  core::InvokeResult remote =
      cores[1]->invocation().Invoke(remote_ref.handle(), "text", {});
  EXPECT_EQ(remote.hops, 1);
  EXPECT_EQ(remote.location, cores[0]->id());
}

}  // namespace
}  // namespace fargo::testing
