// Heartbeat failure detector: suspicion after silent crashes, recovery on
// heal, dependency-derived peer sets, and the coreUnreachable script-rule
// path that re-homes complets off a dead Core.
#include "src/core/heartbeat.h"

#include <gtest/gtest.h>

#include "src/core/persistence.h"
#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

class HeartbeatTest : public FargoTest {};

TEST_F(HeartbeatTest, WatchedCrashedPeerIsSuspected) {
  auto cores = MakeCores(2, Millis(1));
  core::FailureDetector& fd =
      cores[0]->EnableHeartbeat(Millis(100), /*k_missed=*/3);
  fd.Watch(cores[1]->id());

  std::vector<CoreId> unreachable;
  cores[0]->events().Listen(monitor::EventKind::kCoreUnreachable,
                            [&](const monitor::Event& e) {
                              unreachable.push_back(e.peer);
                            });

  rt.RunFor(Millis(350));
  EXPECT_FALSE(fd.IsSuspected(cores[1]->id()));  // pongs flowing
  EXPECT_GT(fd.pings_sent(), 0u);

  cores[1]->Crash();
  rt.RunFor(Millis(600));  // > k_missed * interval
  EXPECT_TRUE(fd.IsSuspected(cores[1]->id()));
  ASSERT_EQ(unreachable.size(), 1u);
  EXPECT_EQ(unreachable[0], cores[1]->id());
  EXPECT_EQ(fd.suspicions(), 1u);

  cores[0]->DisableHeartbeat();
  rt.RunUntilIdle();  // terminates: the ping timer is gone
  EXPECT_EQ(rt.scheduler().PendingCount(), 0u);
}

TEST_F(HeartbeatTest, RecoveryFiresCoreRecovered) {
  auto cores = MakeCores(2, Millis(1));
  core::FailureDetector& fd = cores[0]->EnableHeartbeat(Millis(100), 2);
  fd.Watch(cores[1]->id());

  int recovered = 0;
  cores[0]->events().Listen(monitor::EventKind::kCoreRecovered,
                            [&](const monitor::Event& e) {
                              ++recovered;
                              EXPECT_EQ(e.peer, cores[1]->id());
                            });

  rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), true);
  rt.RunFor(Millis(500));
  EXPECT_TRUE(fd.IsSuspected(cores[1]->id()));

  rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), false);
  rt.RunFor(Millis(500));
  EXPECT_FALSE(fd.IsSuspected(cores[1]->id()));
  EXPECT_EQ(recovered, 1);
  EXPECT_EQ(fd.recoveries(), 1u);
}

TEST_F(HeartbeatTest, TrackerDependenciesArePingedAutomatically) {
  auto cores = MakeCores(3, Millis(1));
  // core0 invokes a complet on core2: its tracker then forwards into
  // core2, so the detector must ping core2 without an explicit Watch.
  auto msg = cores[2]->New<Message>("hi");
  auto stub = cores[0]->RefFromHandle(msg.handle());
  stub.Call("print");

  core::FailureDetector& fd = cores[0]->EnableHeartbeat(Millis(100), 3);
  bool suspected_fired = false;
  cores[0]->events().Listen(
      monitor::EventKind::kCoreUnreachable,
      [&](const monitor::Event&) { suspected_fired = true; });

  cores[2]->Crash();
  rt.RunFor(Seconds(1));
  EXPECT_TRUE(fd.IsSuspected(cores[2]->id()));
  EXPECT_TRUE(suspected_fired);
  // core1 is no dependency of core0 — never suspected, never pinged.
  EXPECT_FALSE(fd.IsSuspected(cores[1]->id()));
}

TEST_F(HeartbeatTest, CrashStopsTheCrashedCoresOwnDetector) {
  auto cores = MakeCores(2, Millis(1));
  cores[0]->EnableHeartbeat(Millis(50), 3).Watch(cores[1]->id());
  cores[1]->EnableHeartbeat(Millis(50), 3).Watch(cores[0]->id());
  cores[1]->Crash();  // must tear down its own ping timer
  cores[0]->DisableHeartbeat();
  rt.RunUntilIdle();  // terminates only if no periodic task survives
  EXPECT_EQ(rt.scheduler().PendingCount(), 0u);
  EXPECT_EQ(cores[1]->failure_detector(), nullptr);
}

TEST_F(HeartbeatTest, ScriptRuleRehomesCompletOffCrashedCore) {
  // The acceptance scenario: a checkpointed complet lives on core2; when
  // core0's detector declares core2 unreachable, a script rule restores
  // the checkpoint at core0 — the complet survives the crash.
  auto cores = MakeCores(3, Millis(1));
  auto precious = cores[2]->New<Message>("precious-state");
  cores[2]->naming().Bind("precious", precious.handle());

  // Route a call so core0's tracker depends on core2.
  auto stub = cores[0]->RefFromHandle(precious.handle());
  EXPECT_EQ(stub.Call("print").AsString(), "precious-state");

  const std::vector<std::uint8_t> checkpoint = core::SaveCoreImage(*cores[2]);

  script::Engine engine(rt, *cores[0]);
  std::vector<CoreId> restored_from;
  engine.RegisterAction("restore",
                        [&](script::Engine&, const std::vector<Value>& args) {
                          restored_from.push_back(CoreId{
                              static_cast<std::uint32_t>(args.at(0).AsInt())});
                          core::LoadCoreImage(*cores[0], checkpoint);
                        });
  engine.Run("on coreUnreachable firedby $peer listenAt core0 do\n"
             "  restore $peer\n"
             "end");

  cores[0]->EnableHeartbeat(Millis(100), 3);
  cores[2]->Crash();
  rt.RunFor(Seconds(1));

  ASSERT_GE(engine.rule_firings(), 1u);
  ASSERT_FALSE(restored_from.empty());
  EXPECT_EQ(restored_from[0], cores[2]->id());
  EXPECT_TRUE(cores[0]->repository().Contains(precious.target()));

  // The restored complet serves invocations again (fresh route from the
  // restoring Core's ground truth).
  auto again = cores[1]->RefFromHandle(
      ComletHandle{precious.target(), cores[0]->id(), ""});
  EXPECT_EQ(again.Call("print").AsString(), "precious-state");

  // No leaked timers: with the detector stopped, the world drains.
  cores[0]->DisableHeartbeat();
  engine.Detach();
  rt.RunUntilIdle();
  EXPECT_EQ(rt.scheduler().PendingCount(), 0u);
}

TEST_F(HeartbeatTest, ReEnableReplacesDetector) {
  auto cores = MakeCores(2, Millis(1));
  core::FailureDetector& first = cores[0]->EnableHeartbeat(Millis(100), 3);
  first.Watch(cores[1]->id());
  core::FailureDetector& second = cores[0]->EnableHeartbeat(Millis(200), 5);
  EXPECT_EQ(cores[0]->failure_detector(), &second);
  EXPECT_EQ(second.interval(), Millis(200));
  cores[0]->DisableHeartbeat();
  rt.RunUntilIdle();
  EXPECT_EQ(rt.scheduler().PendingCount(), 0u);
}

}  // namespace
}  // namespace fargo::testing
