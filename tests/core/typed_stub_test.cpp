// The §3.1 stub pattern: "the stub has identical signatures of methods and
// constructors as those of the anchor". The FarGo compiler generated these
// in Java; in C++ they are small hand-written wrappers over ComletRef<T>
// (this is the recommended pattern for library users who want a fully
// typed, Fig 3-style surface).
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

/// The typed stub for the Message anchor — what the FarGo compiler would
/// emit. Constructors mirror the anchor's; methods are real C++ methods.
class MessageStub {
 public:
  /// `new Message_("text")` — instantiates the complet at `core`.
  MessageStub(core::Core& core, std::string text)
      : ref_(core.New<Message>(std::move(text))) {}
  /// Wraps an existing reference (e.g. received as a parameter).
  explicit MessageStub(core::ComletRef<Message> ref) : ref_(std::move(ref)) {}

  // -- the anchor's interface, verbatim -------------------------------------
  std::string print() { return ref_.Invoke<std::string>("print"); }
  std::string text() const { return ref_.Invoke<std::string>("text"); }
  void set(const std::string& t) { ref_.Invoke<void>("set", t); }
  std::string whereami() const { return ref_.Invoke<std::string>("whereami"); }

  /// The underlying tracked reference (for Core API interop: move, meta).
  const core::ComletRef<Message>& ref() const { return ref_; }

 private:
  core::ComletRef<Message> ref_;
};

class TypedStubTest : public FargoTest {};

TEST_F(TypedStubTest, ReadsLikeLocalJava) {
  auto cores = MakeCores(2);
  // Message msg = new Message_("Hello World");
  MessageStub msg(*cores[0], "Hello World");
  EXPECT_EQ(msg.text(), "Hello World");

  // Carrier.move(msg, "acadia"); msg.print();
  cores[0]->Move(msg.ref(), cores[1]->id());
  EXPECT_EQ(msg.print(), "Hello World");
  EXPECT_EQ(msg.whereami(), "core1");

  // Mutation through the stub, transparently remote.
  msg.set("updated");
  EXPECT_EQ(msg.text(), "updated");
}

TEST_F(TypedStubTest, StubsAreCopyableLikeReferences) {
  auto cores = MakeCores(1);
  MessageStub a(*cores[0], "shared");
  MessageStub b = a;  // two stubs, one complet
  b.set("via-b");
  EXPECT_EQ(a.text(), "via-b");
}

TEST_F(TypedStubTest, ReflectionWorksThroughTheStub) {
  auto cores = MakeCores(1);
  MessageStub msg(*cores[0], "m");
  core::MetaRef& meta = core::Core::GetMetaRef(msg.ref());
  meta.SetRelocator(std::make_shared<core::Pull>());
  EXPECT_EQ(meta.GetRelocator()->Kind(), "pull");
}

}  // namespace
}  // namespace fargo::testing
