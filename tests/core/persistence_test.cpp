// Persistence (§7 future work): checkpoint/restore of a Core's complets —
// including crash recovery onto a different Core, where the home registry
// re-routes surviving references.
#include <gtest/gtest.h>

#include <cstdio>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::LoadCoreImage;
using core::LoadCoreImageFromFile;
using core::SaveCoreImage;
using core::SaveCoreImageToFile;

class PersistenceTest : public FargoTest {};

TEST_F(PersistenceTest, ImageRoundTripsStateAndIdentity) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  counter.Call("increment", {Value(41)});
  auto msg = cores[0]->New<Message>("persisted");
  cores[0]->BindName("msg", msg);

  std::vector<std::uint8_t> image = SaveCoreImage(*cores[0]);
  auto restored = LoadCoreImage(*cores[1], image);
  EXPECT_EQ(restored.restored.size(), 2u);
  EXPECT_TRUE(restored.skipped.empty());

  // Identities preserved; state preserved; name bindings carried over.
  EXPECT_TRUE(cores[1]->repository().Contains(counter.target()));
  auto ref = cores[1]->RefFromHandle(
      ComletHandle{counter.target(), cores[1]->id(), "test.Counter"});
  EXPECT_EQ(ref.Call("increment").AsInt(), 42);
  auto named = cores[1]->naming().Lookup("msg");
  ASSERT_TRUE(named.has_value());
  EXPECT_EQ(named->id, msg.target());
}

TEST_F(PersistenceTest, RestoreSkipsAlreadyHostedComplets) {
  auto cores = MakeCores(1);
  auto counter = cores[0]->New<Counter>();
  std::vector<std::uint8_t> image = SaveCoreImage(*cores[0]);
  // Each skipped id is announced so recovery code can reconcile.
  std::vector<ComletId> announced;
  cores[0]->events().Listen(
      monitor::EventKind::kComletRestoreSkipped,
      [&announced](const monitor::Event& e) { announced.push_back(e.comlet); });
  auto restored = LoadCoreImage(*cores[0], image);  // restore onto itself
  EXPECT_TRUE(restored.restored.empty());
  ASSERT_EQ(restored.skipped.size(), 1u);
  EXPECT_EQ(restored.skipped[0], counter.target());
  EXPECT_EQ(cores[0]->repository().size(), 1u);
  rt.RunUntilIdle();  // listeners are notified asynchronously
  ASSERT_EQ(announced.size(), 1u);
  EXPECT_EQ(announced[0], counter.target());
}

TEST_F(PersistenceTest, ReferencesKeepRelocatorsAcrossRestore) {
  auto cores = MakeCores(2);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[0]->New<Data>(std::size_t{100});
  worker.Call("bind", {Value(data.handle()), Value("pull")});

  std::vector<std::uint8_t> image = SaveCoreImage(*cores[0]);
  LoadCoreImage(*cores[1], image);

  // The restored worker kept its pull reference (and it resolves to the
  // restored data copy, colocated at core1).
  auto ref = cores[1]->RefFromHandle(
      ComletHandle{worker.target(), cores[1]->id(), "test.Worker"});
  EXPECT_EQ(ref.Call("refType").AsString(), "pull");
  EXPECT_EQ(ref.Call("work").AsInt(), 100);
  EXPECT_EQ(ref.Call("dataLocation").AsInt(),
            static_cast<std::int64_t>(cores[1]->id().value));
}

TEST_F(PersistenceTest, FileRoundTrip) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("on disk");
  const std::string path = ::testing::TempDir() + "fargo_checkpoint.bin";
  SaveCoreImageToFile(*cores[0], path);
  auto restored = LoadCoreImageFromFile(*cores[1], path);
  EXPECT_EQ(restored.restored.size(), 1u);
  auto ref = cores[1]->RefFromHandle(
      ComletHandle{msg.target(), cores[1]->id(), "test.Message"});
  EXPECT_EQ(ref.Call("text").AsString(), "on disk");
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, MissingFileThrows) {
  auto cores = MakeCores(1);
  EXPECT_THROW(LoadCoreImageFromFile(*cores[0], "/nonexistent/nope.bin"),
               FargoError);
}

TEST_F(PersistenceTest, CorruptImageIsRejected) {
  auto cores = MakeCores(1);
  cores[0]->New<Counter>();
  std::vector<std::uint8_t> image = SaveCoreImage(*cores[0]);
  image[0] ^= 0xff;  // break the magic
  auto fresh = MakeCores(1);
  EXPECT_THROW(LoadCoreImage(*cores[0], image), serial::SerialError);
  image.clear();
  EXPECT_THROW(LoadCoreImage(*cores[0], image), serial::SerialError);
}

TEST_F(PersistenceTest, CrashRecoveryWithHomeRegistryHealsReferences) {
  // The full recovery story: checkpoint, crash, restore elsewhere; a
  // remote client's stale reference heals through the home registry.
  rt.EnableHomeRegistry(true);
  auto cores = MakeCores(3);
  auto counter = cores[1]->New<Counter>();
  counter.Call("increment", {Value(7)});
  auto client = cores[0]->RefTo<Counter>(counter.handle());
  EXPECT_EQ(client.Invoke<std::int64_t>("get"), 7);

  std::vector<std::uint8_t> checkpoint = SaveCoreImage(*cores[1]);
  cores[1]->Crash();

  cores[0]->SetRpcTimeout(Millis(200));
  EXPECT_THROW(client.Call("get"), UnreachableError);  // host is gone

  // Operator restores the checkpoint on a standby core.
  LoadCoreImage(*cores[2], checkpoint);
  rt.RunUntilIdle();
  // NOTE: this complet's home was core1 itself and died with it, so even
  // the registry can't help; the client re-resolves out of band (operator
  // announcement) and repairs its route explicitly:
  cores[0]->trackers().SetForward(counter.target(), cores[2]->id(),
                                  "test.Counter");
  EXPECT_EQ(client.Invoke<std::int64_t>("get"), 7);
}

TEST_F(PersistenceTest, CrashRecoveryHealsWhenHomeSurvives) {
  // Home (origin) core survives; the hosting core crashes; restore on a
  // standby core and the OLD stub heals transparently via the home.
  rt.EnableHomeRegistry(true);
  auto cores = MakeCores(3);
  auto counter = cores[0]->New<Counter>();  // home: core0
  counter.Call("increment", {Value(3)});
  cores[0]->Move(counter, cores[1]->id());
  rt.RunUntilIdle();

  std::vector<std::uint8_t> checkpoint = SaveCoreImage(*cores[1]);
  cores[1]->Crash();
  LoadCoreImage(*cores[2], checkpoint);
  rt.RunUntilIdle();  // home (core0) learns: counter @ core2

  cores[0]->SetRpcTimeout(Millis(200));
  // The original stub at core0 still works: chain fails, home heals it.
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 3);
}

}  // namespace
}  // namespace fargo::testing
