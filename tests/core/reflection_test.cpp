// Reflection on complet references (§3.2): MetaRef, relocator retyping,
// the live-reference registry, and reference-level profiling counters.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::ComletRef;
using core::Core;
using core::MetaRef;

class ReflectionTest : public FargoTest {};

TEST_F(ReflectionTest, GetMetaRefReturnsTheReifiedReference) {
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("m");
  MetaRef& meta = Core::GetMetaRef(msg);
  EXPECT_EQ(meta.target(), msg.target());
  EXPECT_EQ(meta.GetRelocator()->Kind(), "link");  // default type
}

TEST_F(ReflectionTest, PaperRetypingIdiom) {
  // MetaRef metaRef = Core.getMetaRef(msg);
  // if (metaRef.getRelocator() instanceof Link)
  //     metaRef.setRelocator(new Pull());
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("m");
  MetaRef& meta = Core::GetMetaRef(msg);
  if (std::dynamic_pointer_cast<core::Link>(meta.GetRelocator()))
    meta.SetRelocator(std::make_shared<core::Pull>());
  EXPECT_EQ(meta.GetRelocator()->Kind(), "pull");
}

TEST_F(ReflectionTest, SettingNullRelocatorThrows) {
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("m");
  EXPECT_THROW(Core::GetMetaRef(msg).SetRelocator(nullptr), FargoError);
}

TEST_F(ReflectionTest, MetaRefOfUnboundRefThrows) {
  ComletRef<Message> unbound;
  EXPECT_THROW(Core::GetMetaRef(unbound), FargoError);
}

TEST_F(ReflectionTest, CopiesShareTheMetaRef) {
  // Copies of a stub alias one meta reference, like multiple local pointers
  // to one generated stub object.
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("m");
  ComletRef<Message> copy = msg;
  Core::GetMetaRef(copy).SetRelocator(std::make_shared<core::Stamp>());
  EXPECT_EQ(Core::GetMetaRef(msg).GetRelocator()->Kind(), "stamp");
}

TEST_F(ReflectionTest, KnownLocationTracksMovement) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  MetaRef& meta = Core::GetMetaRef(msg);
  EXPECT_EQ(meta.KnownLocation(*cores[0]), cores[0]->id());
  cores[0]->Move(msg, cores[1]->id());
  EXPECT_EQ(meta.KnownLocation(*cores[0]), cores[1]->id());
}

TEST_F(ReflectionTest, InvocationCountsPerReference) {
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("m");
  for (int i = 0; i < 7; ++i) msg.Call("text");
  EXPECT_EQ(Core::GetMetaRef(msg).invocation_count(), 7u);
}

TEST_F(ReflectionTest, LiveRefRegistryTracksOwnership) {
  auto cores = MakeCores(1);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[0]->New<Data>(std::size_t{10});
  worker.Call("bind", {Value(data.handle())});
  // The worker's internal ref is attributed to the worker complet.
  auto owned = cores[0]->RefsOwnedBy(worker.target());
  ASSERT_EQ(owned.size(), 1u);
  EXPECT_EQ(owned[0]->target(), data.target());
  // Top-level refs (this test's stubs) belong to the invalid owner.
  auto top = cores[0]->RefsOwnedBy(ComletId{});
  EXPECT_GE(top.size(), 2u);
}

TEST_F(ReflectionTest, RefsToFindsInboundReferences) {
  auto cores = MakeCores(1);
  auto data = cores[0]->New<Data>(std::size_t{10});
  auto w1 = cores[0]->New<Worker>();
  auto w2 = cores[0]->New<Worker>();
  w1.Call("bind", {Value(data.handle())});
  w2.Call("bind", {Value(data.handle())});
  // Two worker-held refs plus the test's own stub.
  EXPECT_EQ(cores[0]->RefsTo(data.target()).size(), 3u);
}

TEST_F(ReflectionTest, RegistryShrinksWhenRefsDie) {
  auto cores = MakeCores(1);
  const std::size_t base = cores[0]->live_ref_count();
  {
    auto msg = cores[0]->New<Message>("m");
    ComletRef<Message> copy = msg;
    EXPECT_EQ(cores[0]->live_ref_count(), base + 2);
  }
  EXPECT_EQ(cores[0]->live_ref_count(), base);
}

TEST_F(ReflectionTest, MovedCompletsRefsReappearAtDestination) {
  auto cores = MakeCores(2);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[0]->New<Data>(std::size_t{10});
  worker.Call("bind", {Value(data.handle())});
  cores[0]->Move(worker, cores[1]->id());
  EXPECT_EQ(cores[1]->RefsOwnedBy(worker.target()).size(), 1u);
  EXPECT_EQ(cores[0]->RefsOwnedBy(worker.target()).size(), 0u);
}

}  // namespace
}  // namespace fargo::testing
