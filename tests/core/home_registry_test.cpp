// The location-independent naming scheme (§7 future work, implemented as
// an extension): each complet's origin Core doubles as its home registry;
// severed tracker chains recover by consulting the home. Also covers the
// Crash() fault-injection primitive.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

class HomeRegistryTest : public FargoTest {
 protected:
  HomeRegistryTest() { rt.EnableHomeRegistry(true); }
};

TEST_F(HomeRegistryTest, HomeTracksArrivals) {
  auto cores = MakeCores(3);
  auto msg = cores[0]->New<Message>("m");
  EXPECT_EQ(cores[0]->LocateViaHome(msg.target()), cores[0]->id());
  cores[0]->Move(msg, cores[1]->id());
  rt.RunUntilIdle();  // let the home update land
  EXPECT_EQ(cores[2]->LocateViaHome(msg.target()), cores[1]->id());
  cores[1]->MoveId(msg.target(), cores[2]->id());
  rt.RunUntilIdle();
  EXPECT_EQ(cores[0]->LocateViaHome(msg.target()), cores[2]->id());
}

TEST_F(HomeRegistryTest, UnknownCompletHasNoLocation) {
  auto cores = MakeCores(2);
  EXPECT_FALSE(
      cores[1]->LocateViaHome(ComletId{cores[0]->id(), 999}).valid());
}

TEST_F(HomeRegistryTest, DisabledRegistryAnswersNothing) {
  rt.EnableHomeRegistry(false);
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  EXPECT_FALSE(cores[1]->LocateViaHome(msg.target()).valid());
}

TEST_F(HomeRegistryTest, InvocationSurvivesACrashedChainHop) {
  // beta: core0(home) -> core1 -> core2. core1 crashes abruptly (no flush).
  // A stale observer pointing at core1 recovers via the home registry.
  auto cores = MakeCores(4);
  auto beta = cores[0]->New<Message>("beta");
  cores[0]->Move(beta, cores[1]->id());
  auto observer = cores[3]->RefTo<Message>(beta.handle());
  observer.Call("print");  // observer now points straight at core1
  cores[1]->MoveId(beta.target(), cores[2]->id());
  rt.RunUntilIdle();  // home learns: beta @ core2

  cores[1]->Crash();  // chains through core1 are severed, no flush

  cores[3]->SetRpcTimeout(Millis(200));
  // Without the registry this would throw UnreachableError (see the
  // control test below); with it, one retry lands at core2.
  EXPECT_EQ(observer.Invoke<std::string>("text"), "beta");
  // And the tracker was repaired for subsequent calls.
  const core::TrackerEntry* t = cores[3]->trackers().Find(beta.target());
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->next, cores[2]->id());
}

TEST_F(HomeRegistryTest, WithoutRegistryACrashSeversChains) {
  rt.EnableHomeRegistry(false);
  auto cores = MakeCores(4);
  auto beta = cores[0]->New<Message>("beta");
  cores[0]->Move(beta, cores[1]->id());
  auto observer = cores[3]->RefTo<Message>(beta.handle());
  observer.Call("print");
  cores[1]->MoveId(beta.target(), cores[2]->id());
  cores[1]->Crash();
  cores[3]->SetRpcTimeout(Millis(200));
  EXPECT_THROW(observer.Call("text"), UnreachableError);
}

TEST_F(HomeRegistryTest, CrashOfTheTargetItselfStillFails) {
  auto cores = MakeCores(3);
  auto msg = cores[0]->New<Message>("m");
  cores[0]->Move(msg, cores[1]->id());
  rt.RunUntilIdle();
  auto observer = cores[2]->RefTo<Message>(msg.handle());
  cores[1]->Crash();  // the complet itself died with its host
  cores[2]->SetRpcTimeout(Millis(200));
  // The home points at the dead host; retry exhausts and reports failure.
  EXPECT_THROW(observer.Call("text"), UnreachableError);
}

TEST_F(HomeRegistryTest, CrashedHomeDegradesGracefully) {
  auto cores = MakeCores(4);
  auto beta = cores[0]->New<Message>("beta");
  cores[0]->Move(beta, cores[1]->id());
  auto observer = cores[3]->RefTo<Message>(beta.handle());
  observer.Call("print");
  cores[1]->MoveId(beta.target(), cores[2]->id());
  rt.RunUntilIdle();
  // BOTH the chain hop and the home die.
  cores[1]->Crash();
  cores[0]->Crash();
  cores[3]->SetRpcTimeout(Millis(200));
  EXPECT_THROW(observer.Call("text"), UnreachableError);
}

TEST_F(HomeRegistryTest, OutOfOrderHomeUpdatesResolveByTimestamp) {
  // Move the complet rapidly; home updates race over links with different
  // latencies but the home keeps the newest observation.
  auto cores = MakeCores(4);
  // Slow link from core1 to home, fast from core2.
  rt.network().SetLinkOneWay(cores[1]->id(), cores[0]->id(),
                             {Millis(500), 1e9, true});
  auto msg = cores[0]->New<Message>("m");
  cores[0]->Move(msg, cores[1]->id());  // update travels slowly
  cores[1]->MoveId(msg.target(), cores[2]->id());  // update travels fast
  rt.RunFor(Seconds(2));  // both updates have landed, slow one last
  EXPECT_EQ(cores[3]->LocateViaHome(msg.target()), cores[2]->id());
}

TEST_F(HomeRegistryTest, MoveCommandsAlsoRecoverViaRetry) {
  // Core::Move routed through a crashed hop recovers because the move
  // command travels as a (retryable) system invocation.
  auto cores = MakeCores(4);
  auto msg = cores[0]->New<Message>("m");
  cores[0]->Move(msg, cores[1]->id());
  auto ref = cores[3]->RefTo<Message>(msg.handle());
  ref.Call("print");
  cores[1]->MoveId(msg.target(), cores[2]->id());
  rt.RunUntilIdle();
  cores[1]->Crash();
  cores[3]->SetRpcTimeout(Millis(200));
  cores[3]->Move(ref, cores[3]->id());  // routed via home after retry
  EXPECT_TRUE(cores[3]->repository().Contains(msg.target()));
}

TEST_F(HomeRegistryTest, CorruptControlMessagesAreDropped) {
  auto cores = MakeCores(2);
  net::Message bad;
  bad.from = cores[1]->id();
  bad.to = cores[0]->id();
  bad.kind = net::MessageKind::kControl;
  bad.payload = {0xff, 0x01};  // unknown subkind / garbage
  rt.network().Send(bad);
  net::Message truncated;
  truncated.from = cores[1]->id();
  truncated.to = cores[0]->id();
  truncated.kind = net::MessageKind::kInvokeRequest;
  truncated.payload = {0x01};  // malformed request
  rt.network().Send(truncated);
  rt.RunUntilIdle();
  // The core survives and still serves.
  auto msg = cores[0]->New<Message>("ok");
  EXPECT_EQ(msg.Invoke<std::string>("text"), "ok");
}

}  // namespace
}  // namespace fargo::testing
