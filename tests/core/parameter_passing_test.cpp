// §3.1 parameter passing, end to end: regular objects by value (object
// graphs with aliasing; embedded complet refs degraded to link; referenced
// complets never copied), anchors by reference (degraded to link), and the
// same rules applied through invocation arguments and return values.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

/// Anchor that accepts/returns object blobs, materializing them — the
/// receiving half of pass-by-value.
class BlobEater : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.BlobEater";
  BlobEater() {
    methods().Register("consume", [this](const std::vector<Value>& args) {
      auto tree = core()->MaterializeObjectAs<TreeNode>(args.at(0).AsBlob());
      last_value_ = tree->value;
      shared_ = tree->left != nullptr && tree->left == tree->right;
      // Use the embedded (degraded) ref if present.
      if (tree->counter) tree->counter.Call("increment");
      return Value(last_value_);
    });
    methods().Register("produce", [this](const std::vector<Value>& args) {
      TreeNode root;
      root.value = args.at(0).AsInt();
      auto shared = std::make_shared<TreeNode>();
      shared->value = root.value * 2;
      root.left = shared;
      root.right = shared;
      return Value(core()->CaptureObject(root));
    });
    methods().Register("lastShared", [this](const std::vector<Value>&) {
      return Value(shared_);
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteInt(last_value_);
    w.WriteBool(shared_);
  }
  void Deserialize(serial::GraphReader& r) override {
    last_value_ = r.ReadInt();
    shared_ = r.ReadBool();
  }

 private:
  std::int64_t last_value_ = 0;
  bool shared_ = false;
};

const bool kReg = serial::RegisterType<BlobEater>();

class ParameterPassingTest : public FargoTest {
 protected:
  ParameterPassingTest() { (void)kReg; }
};

// BlobEater.consume invokes the embedded ref synchronously from inside
// its handler — the blocking idiom the locality engine rejects. Sim-pinned.
class ParameterPassingSimTest : public FargoSimTest {
 protected:
  ParameterPassingSimTest() { (void)kReg; }
};

TEST_F(ParameterPassingTest, ObjectGraphByValueAcrossTheWire) {
  auto cores = MakeCores(2);
  auto eater = cores[0]->New<BlobEater>();
  auto remote = cores[1]->RefTo<BlobEater>(eater.handle());

  TreeNode root;
  root.value = 11;
  auto shared = std::make_shared<TreeNode>();
  root.left = shared;
  root.right = shared;
  ObjectBlob blob = cores[1]->CaptureObject(root);

  EXPECT_EQ(remote.Call("consume", {Value(blob)}).AsInt(), 11);
  EXPECT_TRUE(remote.Invoke<bool>("lastShared"));  // aliasing preserved
}

TEST_F(ParameterPassingTest, CopyIsDeepTheSenderKeepsItsObject) {
  auto cores = MakeCores(2);
  auto eater = cores[0]->New<BlobEater>();
  auto remote = cores[1]->RefTo<BlobEater>(eater.handle());
  TreeNode root;
  root.value = 1;
  ObjectBlob blob = cores[1]->CaptureObject(root);
  root.value = 999;  // mutate after capture: the receiver sees the snapshot
  EXPECT_EQ(remote.Call("consume", {Value(blob)}).AsInt(), 1);
}

TEST_F(ParameterPassingSimTest, EmbeddedRefIsLiveAndCompletNotCopied) {
  auto cores = MakeCores(3);
  auto counter = cores[2]->New<Counter>();  // lives at a third core
  auto eater = cores[0]->New<BlobEater>();
  auto remote = cores[1]->RefTo<BlobEater>(eater.handle());

  TreeNode root;
  root.value = 5;
  root.counter = counter;
  ObjectBlob blob = cores[1]->CaptureObject(root);
  remote.Call("consume", {Value(blob)});

  // The counter complet was NOT copied anywhere...
  EXPECT_EQ(cores[0]->repository().size(), 1u);  // just the eater
  EXPECT_EQ(cores[1]->repository().size(), 0u);
  // ...and the eater really incremented the original through the wire.
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);
}

TEST_F(ParameterPassingTest, ReturnedBlobsMaterializeAtTheCaller) {
  auto cores = MakeCores(2);
  auto eater = cores[0]->New<BlobEater>();
  auto remote = cores[1]->RefTo<BlobEater>(eater.handle());
  Value blob = remote.Call("produce", {Value(21)});
  auto tree = cores[1]->MaterializeObjectAs<TreeNode>(blob.AsBlob());
  EXPECT_EQ(tree->value, 21);
  EXPECT_EQ(tree->left, tree->right);  // aliasing survives the return path
  EXPECT_EQ(tree->left->value, 42);
}

TEST_F(ParameterPassingTest, BlobRefsSurviveTargetMovement) {
  // The handle inside a blob is a tracked reference: it keeps working after
  // the target complet moves.
  auto cores = MakeCores(3);
  auto counter = cores[0]->New<Counter>();
  TreeNode root;
  root.counter = counter;
  ObjectBlob blob = cores[0]->CaptureObject(root);

  cores[0]->Move(counter, cores[2]->id());
  auto copy = cores[1]->MaterializeObjectAs<TreeNode>(blob);
  EXPECT_EQ(copy->counter.Invoke<std::int64_t>("increment"), 1);
}

TEST_F(ParameterPassingTest, HandleArgumentsDegradeButTrack) {
  auto cores = MakeCores(3);
  auto data = cores[0]->New<Data>(std::size_t{64});
  auto worker = cores[1]->New<Worker>();
  worker.Call("bind", {Value(data.handle()), Value("pull")});
  // The worker's ref came in by reference and carries the requested type
  // only because bind set it explicitly; a plain pass stays link:
  auto worker2 = cores[2]->New<Worker>();
  worker2.Call("bind", {Value(data.handle())});
  EXPECT_EQ(worker2.Invoke<std::string>("refType"), "link");
  // Both workers reach the same complet.
  EXPECT_EQ(worker.Invoke<std::int64_t>("work"), 64);
  EXPECT_EQ(worker2.Invoke<std::int64_t>("work"), 64);
  EXPECT_EQ(data.Invoke<std::int64_t>("reads"), 2);
}

TEST_F(ParameterPassingTest, CapturedLatentRefStaysLatent) {
  auto cores = MakeCores(2);
  TreeNode root;
  root.value = 3;  // counter ref left unbound
  ObjectBlob blob = cores[0]->CaptureObject(root);
  auto copy = cores[1]->MaterializeObjectAs<TreeNode>(blob);
  EXPECT_FALSE(copy->counter.bound());
  EXPECT_EQ(copy->value, 3);
}

TEST_F(ParameterPassingTest, MaterializeWrongTypeThrows) {
  auto cores = MakeCores(1);
  TreeNode root;
  ObjectBlob blob = cores[0]->CaptureObject(root);
  EXPECT_THROW(cores[0]->MaterializeObjectAs<Message>(blob), FargoError);
}

TEST_F(ParameterPassingTest, TypedReturnConversionErrorsAreTypeErrors) {
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("not a number");
  EXPECT_THROW(msg.Invoke<std::int64_t>("text"), TypeError);
}

}  // namespace
}  // namespace fargo::testing
