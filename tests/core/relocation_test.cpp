// Relocation semantics of complet references (§2, §3.3): link, pull,
// duplicate, stamp, runtime retyping, degradation on parameter passing,
// and user-defined relocators.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::ComletRef;

// Worker.work does a nested synchronous Invoke from inside its handler —
// the blocking idiom the locality engine rejects by design. Sim-pinned.
class RelocationTest : public FargoSimTest {};

// Builds worker(+relocator kind)->data on cores[0] and returns both refs.
struct Pair {
  ComletRef<Worker> worker;
  ComletRef<Data> data;
};
Pair MakePair(core::Core& host, const std::string& kind,
              std::size_t data_bytes = 1000) {
  Pair p;
  p.worker = host.New<Worker>();
  p.data = host.New<Data>(data_bytes);
  p.worker.Call("bind", {Value(p.data.handle()), Value(kind)});
  return p;
}

TEST_F(RelocationTest, LinkTargetStaysBehind) {
  auto cores = MakeCores(2);
  Pair p = MakePair(*cores[0], "link");
  cores[0]->Move(p.worker, cores[1]->id());
  EXPECT_TRUE(cores[1]->repository().Contains(p.worker.target()));
  EXPECT_TRUE(cores[0]->repository().Contains(p.data.target()));
  // The moved worker still reaches its (now remote) data source.
  EXPECT_EQ(p.worker.Invoke<std::int64_t>("work"), 1000);
}

TEST_F(RelocationTest, PullTargetMovesAlong) {
  auto cores = MakeCores(2);
  Pair p = MakePair(*cores[0], "pull");
  cores[0]->Move(p.worker, cores[1]->id());
  EXPECT_TRUE(cores[1]->repository().Contains(p.worker.target()));
  EXPECT_TRUE(cores[1]->repository().Contains(p.data.target()));
  EXPECT_FALSE(cores[0]->repository().Contains(p.data.target()));
  EXPECT_EQ(p.worker.Invoke<std::int64_t>("work"), 1000);
}

TEST_F(RelocationTest, PullSharesOneStream) {
  auto cores = MakeCores(2);
  Pair p = MakePair(*cores[0], "pull", 50000);
  rt.network().ResetStats();
  cores[0]->Move(p.worker, cores[1]->id());
  // Worker + pulled data in ONE inter-core message (§3.3).
  EXPECT_EQ(rt.network().StatsBetween(cores[0]->id(), cores[1]->id()).messages,
            1u);
  EXPECT_GT(rt.network().StatsBetween(cores[0]->id(), cores[1]->id()).bytes,
            50000u);
}

TEST_F(RelocationTest, PullChainMovesTransitively) {
  // worker -pull-> data; data is itself a Node chain? Use Nodes:
  // n0 -pull-> n1 -pull-> n2: moving n0 drags the whole chain.
  auto cores = MakeCores(2);
  auto n0 = cores[0]->New<Node>();
  auto n1 = cores[0]->New<Node>();
  auto n2 = cores[0]->New<Node>();
  n0.Call("setNext", {Value(n1.handle()), Value("pull")});
  n1.Call("setNext", {Value(n2.handle()), Value("pull")});
  rt.network().ResetStats();
  cores[0]->Move(n0, cores[1]->id());
  EXPECT_TRUE(cores[1]->repository().Contains(n1.target()));
  EXPECT_TRUE(cores[1]->repository().Contains(n2.target()));
  EXPECT_EQ(rt.network().StatsBetween(cores[0]->id(), cores[1]->id()).messages,
            1u);
  EXPECT_EQ(cores[0]->movement().last_move_stats().complets_moved, 3u);
}

TEST_F(RelocationTest, PullCycleTerminates) {
  auto cores = MakeCores(2);
  auto a = cores[0]->New<Node>();
  auto b = cores[0]->New<Node>();
  a.Call("setNext", {Value(b.handle()), Value("pull")});
  b.Call("setNext", {Value(a.handle()), Value("pull")});  // cycle
  cores[0]->Move(a, cores[1]->id());
  EXPECT_TRUE(cores[1]->repository().Contains(a.target()));
  EXPECT_TRUE(cores[1]->repository().Contains(b.target()));
  // Both refs still work.
  a.Call("setTag", {Value(5)});
  EXPECT_EQ(b.Invoke<std::int64_t>("sum", std::int64_t{1}), 5);
}

TEST_F(RelocationTest, DuplicateLeavesOriginalAndCopies) {
  auto cores = MakeCores(2);
  Pair p = MakePair(*cores[0], "duplicate");
  p.data.Call("read");  // original reads: 1
  cores[0]->Move(p.worker, cores[1]->id());

  // Original still at core0.
  EXPECT_TRUE(cores[0]->repository().Contains(p.data.target()));
  // A copy (new identity) exists at core1.
  ASSERT_EQ(cores[1]->repository().size(), 2u);
  EXPECT_EQ(cores[0]->movement().last_move_stats().complets_duplicated, 1u);

  // The worker now reads from its local copy, not the original.
  auto reads_before = p.data.Invoke<std::int64_t>("reads");
  EXPECT_EQ(p.worker.Invoke<std::int64_t>("work"), 1000);
  EXPECT_EQ(p.data.Invoke<std::int64_t>("reads"), reads_before);
  // And the copy inherited the original's state (read counter).
  EXPECT_EQ(p.worker.Invoke<std::int64_t>("workDone"), 1);
}

TEST_F(RelocationTest, DuplicateCopyIsColocated) {
  auto cores = MakeCores(2);
  Pair p = MakePair(*cores[0], "duplicate");
  cores[0]->Move(p.worker, cores[1]->id());
  EXPECT_EQ(p.worker.Invoke<std::int64_t>("dataLocation"),
            static_cast<std::int64_t>(cores[1]->id().value));
}

TEST_F(RelocationTest, DuplicateRefsAcrossSectionsShareOneCopy) {
  // Two complets travelling in ONE stream — a Holder and the Worker it
  // pulls along — both hold duplicate references to the same config
  // complet. The move request must create exactly one shared copy.
  auto cores = MakeCores(2);
  auto config = cores[0]->New<Data>(std::size_t{500});
  auto worker = cores[0]->New<Worker>();
  worker.Call("bind", {Value(config.handle()), Value("duplicate")});

  auto holder = cores[0]->New<Holder>();
  {
    auto anchor = std::dynamic_pointer_cast<Holder>(
        cores[0]->repository().Get(holder.target()));
    anchor->root = std::make_shared<TreeNode>();
    // Edge 1: the holder's own duplicate reference to config.
    auto dup_ref = cores[0]->RefFromHandle(config.handle());
    core::Core::GetMetaRef(dup_ref).SetRelocator(
        std::make_shared<core::Duplicate>());
    anchor->root->counter = core::ComletRef<Counter>(std::move(dup_ref));
    // Edge 2: pull the worker into the same stream.
    auto pull_ref = cores[0]->RefFromHandle(worker.handle());
    core::Core::GetMetaRef(pull_ref).SetRelocator(
        std::make_shared<core::Pull>());
    anchor->root->left = std::make_shared<TreeNode>();
    anchor->root->left->counter = core::ComletRef<Counter>(std::move(pull_ref));
  }

  cores[0]->Move(holder, cores[1]->id());
  const auto& stats = cores[0]->movement().last_move_stats();
  // Sections: holder + pulled worker; duplicate edges: holder's closure
  // ref + the worker's bound ref — ONE shared copy.
  EXPECT_EQ(stats.complets_moved, 2u);
  EXPECT_EQ(stats.complets_duplicated, 1u);
  EXPECT_TRUE(cores[0]->repository().Contains(config.target()));  // original
  // The worker works against the colocated copy, not the original.
  const std::int64_t reads_before = config.Invoke<std::int64_t>("reads");
  EXPECT_EQ(worker.Invoke<std::int64_t>("work"), 500);
  EXPECT_EQ(config.Invoke<std::int64_t>("reads"), reads_before);
}

TEST_F(RelocationTest, StampRebindsToLocalEquivalent) {
  auto cores = MakeCores(2);
  // A printer on each core; a worker stamps its printer reference.
  auto printer0 = cores[0]->New<Printer>();
  auto printer1 = cores[1]->New<Printer>();
  auto node = cores[0]->New<Node>();
  node.Call("setNext", {Value(printer0.handle()), Value("stamp")});
  // NOTE: Node's next is typed ComletRef<Node> but stamp matches by the
  // recorded anchor type, which is the handle's ("test.Printer").
  cores[0]->Move(node, cores[1]->id());
  EXPECT_TRUE(node.Invoke<bool>("hasNext"));
  // The reference now points at core1's local printer.
  auto anchor = std::dynamic_pointer_cast<Node>(
      cores[1]->repository().Get(node.target()));
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(anchor->next().target(), printer1.target());
  EXPECT_EQ(printer1.Invoke<std::int64_t>("jobs"), 0);
}

TEST_F(RelocationTest, StampWithNoLocalEquivalentLeavesUnbound) {
  auto cores = MakeCores(2);
  auto printer0 = cores[0]->New<Printer>();
  auto node = cores[0]->New<Node>();
  node.Call("setNext", {Value(printer0.handle()), Value("stamp")});
  cores[0]->Move(node, cores[1]->id());  // no printer at core1
  EXPECT_FALSE(node.Invoke<bool>("hasNext"));
}

TEST_F(RelocationTest, LatentStampRebindsAtALaterSite) {
  // A stamp that finds no equivalent at one site stays typed-but-unbound
  // and re-attempts the rebind at the next site (the mobile-desktop
  // example of §2: reconnect to a local printer wherever one exists).
  auto cores = MakeCores(3);
  auto printer0 = cores[0]->New<Printer>();
  auto printer2 = cores[2]->New<Printer>();
  auto node = cores[0]->New<Node>();
  node.Call("setNext", {Value(printer0.handle()), Value("stamp")});

  cores[0]->Move(node, cores[1]->id());  // no printer at core1
  EXPECT_FALSE(node.Invoke<bool>("hasNext"));
  cores[1]->MoveId(node.target(), cores[2]->id());  // printer here again
  EXPECT_TRUE(node.Invoke<bool>("hasNext"));
  auto anchor = std::dynamic_pointer_cast<Node>(
      cores[2]->repository().Get(node.target()));
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(anchor->next().target(), printer2.target());
}

TEST_F(RelocationTest, StampKeepsItsSemanticsAcrossMoves) {
  // After re-binding at one site, the reference remains a stamp: moving on
  // re-binds again at the next site.
  auto cores = MakeCores(3);
  auto p0 = cores[0]->New<Printer>();
  auto p1 = cores[1]->New<Printer>();
  auto p2 = cores[2]->New<Printer>();
  auto node = cores[0]->New<Node>();
  node.Call("setNext", {Value(p0.handle()), Value("stamp")});
  cores[0]->Move(node, cores[1]->id());
  EXPECT_EQ(node.Invoke<std::string>("nextType"), "stamp");
  cores[1]->MoveId(node.target(), cores[2]->id());
  auto anchor = std::dynamic_pointer_cast<Node>(
      cores[2]->repository().Get(node.target()));
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(anchor->next().target(), p2.target());
}

TEST_F(RelocationTest, RemotePullIsDeferredButArrives) {
  // worker at core0 pulls data living at core2; moving worker to core1
  // drags the remote data there with a follow-up move.
  auto cores = MakeCores(3);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[2]->New<Data>(std::size_t{500});
  worker.Call("bind", {Value(data.handle()), Value("pull")});
  cores[0]->Move(worker, cores[1]->id());
  rt.RunUntilIdle();
  EXPECT_TRUE(cores[1]->repository().Contains(worker.target()));
  EXPECT_TRUE(cores[1]->repository().Contains(data.target()));
  EXPECT_EQ(worker.Invoke<std::int64_t>("work"), 500);
}

TEST_F(RelocationTest, RuntimeRetypingChangesMoveBehaviour) {
  auto cores = MakeCores(2);
  Pair p = MakePair(*cores[0], "link");
  // Reflective retype: link -> pull (§3.2's example).
  bool retyped = false;
  for (const core::ComletRefBase* ref :
       cores[0]->RefsOwnedBy(p.worker.target())) {
    core::MetaRef& meta = core::Core::GetMetaRef(*ref);
    if (std::dynamic_pointer_cast<core::Link>(meta.GetRelocator())) {
      meta.SetRelocator(std::make_shared<core::Pull>());
      retyped = true;
    }
  }
  EXPECT_TRUE(retyped);
  cores[0]->Move(p.worker, cores[1]->id());
  EXPECT_TRUE(cores[1]->repository().Contains(p.data.target()));
}

TEST_F(RelocationTest, AnchorsPassedByReferenceDegradeToLink) {
  auto cores = MakeCores(2);
  // worker at core1 receives a handle to data (via bind with pull); when the
  // handle is passed onwards as a parameter it must arrive as link.
  auto data = cores[0]->New<Data>(std::size_t{10});
  auto worker = cores[1]->New<Worker>();
  worker.Call("bind", {Value(data.handle()), Value("pull")});
  EXPECT_EQ(worker.Invoke<std::string>("refType"), "pull");

  auto worker2 = cores[0]->New<Worker>();
  // Pass the same handle; no relocator argument: receiving side defaults.
  worker2.Call("bind", {Value(data.handle())});
  EXPECT_EQ(worker2.Invoke<std::string>("refType"), "link");
}

TEST_F(RelocationTest, ObjectGraphByValueCarriesDegradedRefsNotComplets) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  // Build an object graph embedding a ref and pass it by value.
  TreeNode node;
  node.value = 5;
  node.counter = counter;
  ObjectBlob blob = cores[0]->CaptureObject(node);

  // Materialize at the other core: the counter complet was NOT copied;
  // the embedded reference is live and degraded to link.
  auto copy = cores[1]->MaterializeObjectAs<TreeNode>(blob);
  EXPECT_EQ(copy->value, 5);
  ASSERT_TRUE(copy->counter.bound());
  EXPECT_TRUE(std::dynamic_pointer_cast<core::Link>(
      core::Core::GetMetaRef(copy->counter).GetRelocator()));
  EXPECT_EQ(cores[1]->repository().size(), 0u);  // no complet copied
  EXPECT_EQ(copy->counter.Invoke<std::int64_t>("increment"), 1);
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);  // same complet
}

// A user-defined relocator: pull the target only when its serialized size
// is below a threshold, else keep a link (the extension mechanism of §3.3).
class PullIfSmall final : public core::Relocator {
 public:
  static constexpr std::string_view kTypeName = "test.PullIfSmall";
  PullIfSmall() = default;
  explicit PullIfSmall(std::int64_t limit) : limit_(limit) {}
  std::string_view TypeName() const override { return kTypeName; }
  std::string_view Kind() const override { return "pull-if-small"; }
  core::RelocEffect EffectOnMove(const core::RelocContext& ctx) const override {
    if (!ctx.target_is_local) return core::RelocEffect::kTrack;
    const double size = ctx.source_core.profiler().Instant(
        monitor::ComletSizeProbe(ctx.target));
    return size <= static_cast<double>(limit_) ? core::RelocEffect::kMoveAlong
                                               : core::RelocEffect::kTrack;
  }
  void Serialize(serial::GraphWriter& w) const override { w.WriteInt(limit_); }
  void Deserialize(serial::GraphReader& r) override { limit_ = r.ReadInt(); }

 private:
  std::int64_t limit_ = 0;
};

TEST_F(RelocationTest, UserDefinedRelocatorExtendsTheHierarchy) {
  serial::RegisterType<PullIfSmall>();
  auto cores = MakeCores(3);

  auto small = MakePair(*cores[0], "link", 100);
  auto big = MakePair(*cores[0], "link", 100000);
  for (const core::ComletRefBase* ref :
       cores[0]->RefsOwnedBy(small.worker.target()))
    core::Core::GetMetaRef(*ref).SetRelocator(
        std::make_shared<PullIfSmall>(10000));
  for (const core::ComletRefBase* ref :
       cores[0]->RefsOwnedBy(big.worker.target()))
    core::Core::GetMetaRef(*ref).SetRelocator(
        std::make_shared<PullIfSmall>(10000));

  cores[0]->Move(small.worker, cores[1]->id());
  cores[0]->Move(big.worker, cores[2]->id());

  EXPECT_TRUE(cores[1]->repository().Contains(small.data.target()));   // pulled
  EXPECT_TRUE(cores[0]->repository().Contains(big.data.target()));     // stayed
  // The custom relocator (with its state) survived the move.
  EXPECT_EQ(small.worker.Invoke<std::string>("refType"), "pull-if-small");
}

class RefTypeSweep : public FargoSimTest,
                     public ::testing::WithParamInterface<const char*> {};

TEST_P(RefTypeSweep, WorkerRemainsFunctionalAfterMove) {
  auto cores = MakeCores(2);
  // A printer at each core so stamp can re-bind.
  cores[0]->New<Printer>();
  cores[1]->New<Printer>();
  Pair p = MakePair(*cores[0], GetParam());
  cores[0]->Move(p.worker, cores[1]->id());
  EXPECT_TRUE(cores[1]->repository().Contains(p.worker.target()));
  if (std::string(GetParam()) != "stamp") {
    EXPECT_EQ(p.worker.Invoke<std::int64_t>("work"), 1000);
    EXPECT_EQ(p.worker.Invoke<std::string>("refType"), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, RefTypeSweep,
                         ::testing::Values("link", "pull", "duplicate"));

}  // namespace
}  // namespace fargo::testing
