// The asynchronous invocation pipeline end to end: pipelined InvokeAsync
// sharing one round-trip, interleaved cross-core calls without nested
// pumping, MoveAsync, script rules relocating complets while invocations
// are in flight, chaos-hardened at-most-once semantics for async batches,
// pump-depth invariants and late-reply accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/script/interp.h"
#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::ComletRef;

class AsyncPipelineTest : public FargoTest {};

TEST_F(AsyncPipelineTest, InterleavedCrossCoreInvocationsDoNotDeadlock) {
  auto cores = MakeCores(2, Millis(20));
  auto a = cores[0]->New<Counter>();
  auto b = cores[1]->New<Counter>();

  // Each side calls the other before either round-trip completes. With the
  // old blocking RPC this required re-entrant pumping; the async pipeline
  // interleaves both conversations on a single event loop.
  auto b_from_0 = cores[0]->RefTo<Counter>(b.handle());
  auto a_from_1 = cores[1]->RefTo<Counter>(a.handle());
  sim::Future<std::int64_t> f1 = b_from_0.InvokeAsync<std::int64_t>("increment");
  sim::Future<std::int64_t> f2 = a_from_1.InvokeAsync<std::int64_t>("increment");
  EXPECT_FALSE(f1.settled());
  EXPECT_FALSE(f2.settled());

  rt.RunUntilIdle();
  ASSERT_TRUE(f1.settled());
  ASSERT_TRUE(f2.settled());
  EXPECT_EQ(f1.value(), 1);
  EXPECT_EQ(f2.value(), 1);
}

TEST_F(AsyncPipelineTest, PipelinedInvocationsShareTheRoundTrip) {
  auto cores = MakeCores(2, Millis(50));
  auto counter = cores[1]->New<Counter>();
  auto stub = cores[0]->RefTo<Counter>(counter.handle());

  // Baseline: one synchronous invocation over the 50 ms link.
  const SimTime t0 = rt.scheduler().Now();
  EXPECT_EQ(stub.Invoke<std::int64_t>("increment"), 1);
  const SimTime single = rt.scheduler().Now() - t0;
  ASSERT_GT(single, Millis(99));  // sanity: the RTT is really being paid

  // K concurrent calls issued back-to-back: they pipeline on the link and
  // complete in roughly one round-trip, not K of them.
  constexpr int kPipeline = 16;
  const SimTime t1 = rt.scheduler().Now();
  std::vector<sim::Future<std::int64_t>> futures;
  for (int i = 0; i < kPipeline; ++i)
    futures.push_back(stub.InvokeAsync<std::int64_t>("increment"));
  rt.RunUntilIdle();
  const SimTime pipelined = rt.scheduler().Now() - t1;

  std::vector<std::int64_t> got;
  for (auto& f : futures) {
    ASSERT_TRUE(f.settled());
    got.push_back(f.value());
  }
  std::sort(got.begin(), got.end());
  for (int i = 0; i < kPipeline; ++i) EXPECT_EQ(got[i], i + 2);

  // The acceptance bar: 16 pipelined calls in under 2x one call.
  EXPECT_LT(pipelined, 2 * single)
      << "pipelined=" << pipelined << " single=" << single;
}

TEST_F(AsyncPipelineTest, MoveAsyncSettlesAndRelocates) {
  auto cores = MakeCores(3);
  auto counter = cores[1]->New<Counter>();

  // A routed move issued from an administrative core that hosts nothing.
  auto stub = cores[0]->RefTo<Counter>(counter.handle());
  sim::Future<sim::Unit> moved = cores[0]->MoveAsync(stub, cores[2]->id());
  EXPECT_FALSE(moved.settled());
  rt.RunUntilIdle();
  ASSERT_TRUE(moved.settled());
  EXPECT_TRUE(moved.ok());
  EXPECT_TRUE(cores[2]->repository().Contains(counter.target()));

  // The relocated complet is still invocable through the stale stub
  // (forwarding + chain shortening, §3.1).
  EXPECT_EQ(stub.Invoke<std::int64_t>("increment"), 1);
}

TEST_F(AsyncPipelineTest, ScriptRuleMovesComletWhileInvocationsAreInFlight) {
  auto cores = MakeCores(3, Millis(20));
  auto counter = cores[1]->New<Counter>();
  auto stub = cores[0]->RefTo<Counter>(counter.handle());

  // A periodic relocation rule at the admin core: its body runs inside a
  // scheduled listener, so the move goes through MoveAsync (no nested pump)
  // while client invocations race the relocation.
  script::Engine engine(rt, *cores[0]);
  engine.SetVar("target", Value(counter.handle()));
  engine.Run("every 0.03 do move $target to core2 end");

  std::vector<sim::Future<std::int64_t>> futures;
  constexpr int kWave = 8;
  for (int i = 0; i < kWave; ++i)
    futures.push_back(stub.InvokeAsync<std::int64_t>("increment"));
  // A second wave launched mid-flight of the relocation.
  rt.scheduler().ScheduleAfter(Millis(35), [&] {
    for (int i = 0; i < kWave; ++i)
      futures.push_back(stub.InvokeAsync<std::int64_t>("increment"));
  });

  rt.RunFor(Millis(500));
  engine.Detach();  // stop the periodic rule so the world can drain
  rt.RunUntilIdle();

  EXPECT_GE(engine.moves_executed(), 1u);
  EXPECT_TRUE(cores[2]->repository().Contains(counter.target()));
  ASSERT_EQ(futures.size(), 2u * kWave);
  for (auto& f : futures) {
    ASSERT_TRUE(f.settled());
    EXPECT_TRUE(f.ok());
  }
  // Every invocation executed exactly once despite forwarding/parking.
  auto anchor = cores[2]->repository().Get(counter.target());
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(static_cast<const Counter*>(anchor.get())->value(), 2 * kWave);
}

TEST_F(AsyncPipelineTest, ChaosPipelinedBatchesNeverDoubleExecute) {
  auto cores = MakeCores(3, Millis(2), 1e7);

  core::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = Millis(20);
  policy.seed = 0xA5F0;
  for (core::Core* c : cores) {
    c->SetRpcTimeout(Millis(200));
    c->SetRetryPolicy(policy);
  }

  net::FaultPlan plan;
  plan.seed = 0xA5F0;
  plan.drop = 0.05;
  plan.duplicate = 0.02;
  plan.reorder = 0.10;
  plan.reorder_jitter = Millis(10);
  rt.network().SetFaultPlan(plan);

  auto ledger = cores[0]->New<OpLedger>();
  constexpr int kBatches = 10;
  constexpr int kBatchSize = 16;
  std::int64_t successes = 0;
  std::int64_t op = 0;
  for (int b = 0; b < kBatches; ++b) {
    // Periodic re-layout between batches keeps requests racing the complet.
    if (b > 0) {
      try {
        cores[b % 3]->MoveId(ledger.target(), cores[(b + 1) % 3]->id());
      } catch (const FargoError&) {
        // Retries exhausted under chaos; the batch below still routes via
        // home-registry fallback.
      }
    }
    std::vector<sim::Future<std::int64_t>> batch;
    auto stub = cores[(b + 2) % 3]->RefTo<OpLedger>(ledger.handle());
    for (int i = 0; i < kBatchSize; ++i)
      batch.push_back(stub.InvokeAsync<std::int64_t>("apply", op++));
    rt.RunUntilIdle();
    for (auto& f : batch) {
      ASSERT_TRUE(f.settled());
      if (f.ok()) ++successes;
    }
  }

  rt.network().ClearFaults();
  rt.RunUntilIdle();

  // Audit the ground truth: at-most-once must hold for async batches too.
  const OpLedger* anchor = nullptr;
  for (core::Core* c : cores) {
    if (auto a = c->repository().Get(ledger.target())) {
      anchor = static_cast<const OpLedger*>(a.get());
      break;
    }
  }
  ASSERT_NE(anchor, nullptr) << "ledger vanished under chaos";
  EXPECT_EQ(anchor->dups(), 0);
  EXPECT_GE(anchor->total(), successes);
  EXPECT_LE(anchor->total(), op);
}

TEST_F(AsyncPipelineTest, PureAsyncPipelineNeverNestsThePump) {
  auto cores = MakeCores(2, Millis(10));
  auto counter = cores[1]->New<Counter>();
  auto stub = cores[0]->RefTo<Counter>(counter.handle());

  std::vector<sim::Future<std::int64_t>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(stub.InvokeAsync<std::int64_t>("increment"));
  // A local (host-initiated) async move rides along: marshal/commit are
  // continuation-driven as well.
  sim::Future<sim::Unit> moved = cores[1]->MoveAsync(counter, cores[0]->id());
  rt.RunUntilIdle();

  for (auto& f : futures) {
    ASSERT_TRUE(f.settled());
    EXPECT_TRUE(f.ok());
  }
  EXPECT_TRUE(moved.ok());

  // The tentpole invariant: nothing in the async path re-entered the
  // scheduler. Every pump in this test was the top-level RunUntilIdle.
  EXPECT_EQ(rt.scheduler().MaxPumpDepth(), 1);
  EXPECT_EQ(rt.metrics().GaugeValue("sched.pump_depth"), 1.0);
}

TEST_F(AsyncPipelineTest, LateRepliesAreCountedAndDropped) {
  auto cores = MakeCores(2, Millis(30));  // RTT 60 ms
  core::RetryPolicy one_shot;
  one_shot.max_attempts = 1;
  cores[0]->SetRetryPolicy(one_shot);
  cores[0]->SetRpcTimeout(Millis(40));  // gives up before the reply lands

  auto counter = cores[1]->New<Counter>();
  auto stub = cores[0]->RefTo<Counter>(counter.handle());
  EXPECT_THROW(stub.Invoke<std::int64_t>("increment"), UnreachableError);

  // The genuine reply is still in flight; when it lands there is no waiter.
  rt.RunUntilIdle();
  EXPECT_GE(rt.metrics().CounterValue("rpc.late_replies"), 1u);

  // The execution happened exactly once at the target — the timeout was a
  // client-side judgement, not a lost operation.
  auto anchor = cores[1]->repository().Get(counter.target());
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(static_cast<const Counter*>(anchor.get())->value(), 1);
}

}  // namespace
}  // namespace fargo::testing
