// Complet classes shared by the test suites (and reused by benches).
//
// They mirror the paper's running examples: the Fig 3 Message complet, a
// worker/data pair for layout-semantics tests, a Printer for stamp
// re-binding, and a linked Node for chain/graph scenarios.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/fargo.h"

namespace fargo::testing {

/// Registers all test comlet types with the type registry. Idempotent.
void RegisterTestComlets();

/// Fig 3's Message anchor: holds a text, counts prints.
class Message : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.Message";

  Message();
  explicit Message(std::string text);

  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;

  const std::string& text() const { return text_; }
  int prints() const { return prints_; }
  int continuations() const { return continuations_; }

  // movement callback bookkeeping (§3.3)
  int pre_departures = 0;
  int pre_arrivals = 0;
  int post_arrivals = 0;
  int post_departures = 0;
  void PreDeparture() override { ++pre_departures; }
  void PreArrival() override { ++pre_arrivals; }
  void PostArrival() override { ++post_arrivals; }
  void PostDeparture() override { ++post_departures; }

 private:
  std::string text_;
  int prints_ = 0;
  int continuations_ = 0;
};

/// A counter with remote increment/get.
class Counter : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.Counter";
  Counter();
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// A non-idempotent operation ledger for at-most-once tests: "apply" takes
/// a unique op id and an increment; the ledger records every op id it has
/// ever executed (the record travels with the complet on moves) and counts
/// re-executions of an already-seen id. Any retry/duplication bug shows up
/// as dups() > 0, regardless of which replies the client observed.
class OpLedger : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.OpLedger";
  OpLedger();
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;

  std::int64_t total() const { return total_; }
  std::int64_t dups() const { return dups_; }

 private:
  std::set<std::int64_t> seen_;  ///< ordered: deterministic serialization
  std::int64_t total_ = 0;
  std::int64_t dups_ = 0;
};

/// A data source with a configurable payload size ("read" returns its size).
class Data : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.Data";
  Data();
  explicit Data(std::size_t payload_bytes);
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;
  std::size_t size() const { return payload_.size(); }
  std::int64_t reads() const { return reads_; }

 private:
  std::vector<std::uint8_t> payload_;
  std::int64_t reads_ = 0;
};

/// A worker holding one reference to a Data complet; the reference's
/// relocation semantics are set via "bind"'s second argument or reflection.
class Worker : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.Worker";
  Worker();
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;

  const core::ComletRef<Data>& data() const { return data_; }

 private:
  core::ComletRef<Data> data_;
  std::int64_t work_done_ = 0;
};

/// A location-bound device complet for stamp tests: "print" returns the
/// name of the Core that served it.
class Printer : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.Printer";
  Printer();
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;
  std::int64_t jobs() const { return jobs_; }

 private:
  std::int64_t jobs_ = 0;
};

/// A node in a linked structure of complets; used for pull-closure and
/// cyclic-reference tests. Carries one "next" reference.
class Node : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.Node";
  Node();
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;

  const core::ComletRef<Node>& next() const { return next_; }
  std::int64_t tag() const { return tag_; }

 private:
  core::ComletRef<Node> next_;
  std::int64_t tag_ = 0;
};

/// A plain (non-anchor) intra-complet object graph: a tree node that can
/// alias/cycle and can embed a complet reference — used by serialization
/// and pass-by-value tests.
class TreeNode : public serial::Serializable {
 public:
  static constexpr std::string_view kTypeName = "test.TreeNode";
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;

  std::int64_t value = 0;
  std::shared_ptr<TreeNode> left;
  std::shared_ptr<TreeNode> right;
  core::ComletRef<Counter> counter;  // optional embedded complet reference
};

/// A complet whose closure is a TreeNode graph (exercises closure
/// marshaling with aliasing and embedded refs).
class Holder : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "test.Holder";
  Holder();
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override;
  void Deserialize(serial::GraphReader& r) override;

  std::shared_ptr<TreeNode> root;
};

}  // namespace fargo::testing
