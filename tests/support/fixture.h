// Common gtest fixture: a Runtime with helpers for building WAN topologies.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/fargo.h"
#include "tests/support/comlets.h"

namespace fargo::testing {

class FargoTest : public ::testing::Test {
 protected:
  /// `localities` pins the scheduling engine: -1 (default) follows the
  /// FARGO_PARALLEL environment variable — the whole suite runs under the
  /// locality engine when CI exports it — 0 forces the deterministic sim
  /// (tests asserting exact sim interleavings), N forces N workers.
  explicit FargoTest(int localities = -1)
      : rt(core::RuntimeOptions{localities}) {
    RegisterTestComlets();
  }

  /// On failure, dumps the runtime's span buffers as Chrome-trace JSON next
  /// to the test binary (<Suite>_<Test>.trace.json) so CI can attach the
  /// causal trace to the red job's artifacts. Tests that want a rich trace
  /// opt in with rt.SetTracing(true); the dump itself is unconditional.
  void TearDown() override {
    if (!HasFailure()) return;
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string path = std::string(info->test_suite_name()) + "_" +
                             info->name() + ".trace.json";
    std::ofstream os(path);
    if (!os) return;
    const std::size_t spans = rt.WriteTrace(os);
    std::fprintf(stderr, "[fixture] wrote %s (%zu spans)\n", path.c_str(),
                 spans);
  }

  /// Creates `n` cores named "core0".."core{n-1}" with a uniform link model.
  std::vector<core::Core*> MakeCores(
      int n, SimTime latency = Millis(5),
      double bytes_per_sec = 1.25e6 /* 10 Mbit/s */) {
    std::vector<core::Core*> cores;
    for (int i = 0; i < n; ++i)
      cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
    rt.network().SetDefaultLink(
        net::LinkModel{latency, bytes_per_sec, true});
    return cores;
  }

  core::Runtime rt;
};

/// Pinned to the deterministic sim engine regardless of FARGO_PARALLEL.
/// For tests whose *workload* uses the blocking in-handler idiom — nested
/// synchronous Invoke from a comlet method, script rule commands, listeners
/// that move complets synchronously. The locality engine rejects those by
/// design (handlers are non-blocking state machines; a worker pump throws),
/// so the idiom itself is sim-only. See DESIGN.md §localities.
class FargoSimTest : public FargoTest {
 protected:
  FargoSimTest() : FargoTest(0) {}
};

}  // namespace fargo::testing
