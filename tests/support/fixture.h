// Common gtest fixture: a Runtime with helpers for building WAN topologies.
#pragma once

#include <gtest/gtest.h>

#include "src/fargo.h"
#include "tests/support/comlets.h"

namespace fargo::testing {

class FargoTest : public ::testing::Test {
 protected:
  FargoTest() { RegisterTestComlets(); }

  /// Creates `n` cores named "core0".."core{n-1}" with a uniform link model.
  std::vector<core::Core*> MakeCores(
      int n, SimTime latency = Millis(5),
      double bytes_per_sec = 1.25e6 /* 10 Mbit/s */) {
    std::vector<core::Core*> cores;
    for (int i = 0; i < n; ++i)
      cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
    rt.network().SetDefaultLink(
        net::LinkModel{latency, bytes_per_sec, true});
    return cores;
  }

  core::Runtime rt;
};

}  // namespace fargo::testing
