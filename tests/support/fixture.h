// Common gtest fixture: a Runtime with helpers for building WAN topologies.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/fargo.h"
#include "tests/support/comlets.h"

namespace fargo::testing {

class FargoTest : public ::testing::Test {
 protected:
  FargoTest() { RegisterTestComlets(); }

  /// On failure, dumps the runtime's span buffers as Chrome-trace JSON next
  /// to the test binary (<Suite>_<Test>.trace.json) so CI can attach the
  /// causal trace to the red job's artifacts. Tests that want a rich trace
  /// opt in with rt.SetTracing(true); the dump itself is unconditional.
  void TearDown() override {
    if (!HasFailure()) return;
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string path = std::string(info->test_suite_name()) + "_" +
                             info->name() + ".trace.json";
    std::ofstream os(path);
    if (!os) return;
    const std::size_t spans = rt.WriteTrace(os);
    std::fprintf(stderr, "[fixture] wrote %s (%zu spans)\n", path.c_str(),
                 spans);
  }

  /// Creates `n` cores named "core0".."core{n-1}" with a uniform link model.
  std::vector<core::Core*> MakeCores(
      int n, SimTime latency = Millis(5),
      double bytes_per_sec = 1.25e6 /* 10 Mbit/s */) {
    std::vector<core::Core*> cores;
    for (int i = 0; i < n; ++i)
      cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
    rt.network().SetDefaultLink(
        net::LinkModel{latency, bytes_per_sec, true});
    return cores;
  }

  core::Runtime rt;
};

}  // namespace fargo::testing
