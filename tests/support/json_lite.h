// Minimal recursive-descent JSON parser used by the observability tests to
// prove the Chrome-trace export is well-formed JSON and to walk its
// structure. Supports the full JSON grammar the exporter can emit
// (objects, arrays, strings with escapes, numbers, true/false/null);
// throws std::runtime_error on any syntax violation.
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace fargo::testing::json {

struct JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonPtr> items;
  std::map<std::string, JsonPtr> fields;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  const JsonValue& at(const std::string& key) const {
    auto it = fields.find(key);
    if (it == fields.end())
      throw std::runtime_error("json: missing field " + key);
    return *it->second;
  }
  bool has(const std::string& key) const { return fields.contains(key); }
  double number() const {
    if (kind != Kind::kNumber) throw std::runtime_error("json: not a number");
    return num;
  }
  std::uint64_t u64() const { return static_cast<std::uint64_t>(number()); }
  const std::string& string() const {
    if (kind != Kind::kString) throw std::runtime_error("json: not a string");
    return str;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonPtr Parse() {
    JsonPtr v = ParseValue();
    SkipWs();
    if (pos_ != s_.size())
      throw std::runtime_error("json: trailing garbage at " +
                               std::to_string(pos_));
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char Peek() {
    SkipWs();
    if (pos_ >= s_.size()) throw std::runtime_error("json: unexpected end");
    return s_[pos_];
  }
  char Next() {
    char c = Peek();
    ++pos_;
    return c;
  }
  void Expect(char c) {
    if (Next() != c)
      throw std::runtime_error(std::string("json: expected '") + c + "' at " +
                               std::to_string(pos_ - 1));
  }

  JsonPtr ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  JsonPtr ParseObject() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kObject;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonPtr key = ParseString();
      Expect(':');
      v->fields[key->str] = ParseValue();
      char c = Next();
      if (c == '}') return v;
      if (c != ',') throw std::runtime_error("json: bad object separator");
    }
  }

  JsonPtr ParseArray() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kArray;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v->items.push_back(ParseValue());
      char c = Next();
      if (c == ']') return v;
      if (c != ',') throw std::runtime_error("json: bad array separator");
    }
  }

  JsonPtr ParseString() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kString;
    Expect('"');
    while (true) {
      if (pos_ >= s_.size())
        throw std::runtime_error("json: unterminated string");
      char c = s_[pos_++];
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20)
        throw std::runtime_error("json: raw control char in string");
      if (c != '\\') {
        v->str += c;
        continue;
      }
      if (pos_ >= s_.size())
        throw std::runtime_error("json: dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': v->str += '"'; break;
        case '\\': v->str += '\\'; break;
        case '/': v->str += '/'; break;
        case 'n': v->str += '\n'; break;
        case 't': v->str += '\t'; break;
        case 'r': v->str += '\r'; break;
        case 'b': v->str += '\b'; break;
        case 'f': v->str += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size())
            throw std::runtime_error("json: bad \\u escape");
          // The exporter never emits \u escapes; accept and keep raw.
          v->str += s_.substr(pos_, 4);
          pos_ += 4;
          break;
        }
        default:
          throw std::runtime_error("json: unknown escape");
      }
    }
  }

  JsonPtr ParseBool() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v->b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v->b = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("json: bad literal");
    }
    return v;
  }

  JsonPtr ParseNull() {
    if (s_.compare(pos_, 4, "null") != 0)
      throw std::runtime_error("json: bad literal");
    pos_ += 4;
    return std::make_shared<JsonValue>();
  }

  JsonPtr ParseNumber() {
    SkipWs();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) throw std::runtime_error("json: bad number");
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kNumber;
    v->num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline JsonPtr Parse(const std::string& text) { return Parser(text).Parse(); }

}  // namespace fargo::testing::json
