#include "tests/support/comlets.h"

namespace fargo::testing {

void RegisterTestComlets() {
  serial::RegisterType<Message>();
  serial::RegisterType<Counter>();
  serial::RegisterType<OpLedger>();
  serial::RegisterType<Data>();
  serial::RegisterType<Worker>();
  serial::RegisterType<Printer>();
  serial::RegisterType<Node>();
  serial::RegisterType<TreeNode>();
  serial::RegisterType<Holder>();
}

// ---- Message ----------------------------------------------------------------

Message::Message() {
  methods().Register("print", [this](const std::vector<Value>&) {
    ++prints_;
    return Value(text_);
  });
  methods().Register("text",
                     [this](const std::vector<Value>&) { return Value(text_); });
  methods().Register("set", [this](const std::vector<Value>& args) {
    text_ = args.at(0).AsString();
    return Value();
  });
  methods().Register("whereami", [this](const std::vector<Value>&) {
    return Value(core()->name());
  });
  // Continuation target for Carrier.move-style calls (§3.3).
  methods().Register("start", [this](const std::vector<Value>& args) {
    ++continuations_;
    if (!args.empty() && args[0].IsString()) text_ = args[0].AsString();
    return Value();
  });
}

Message::Message(std::string text) : Message() { text_ = std::move(text); }

void Message::Serialize(serial::GraphWriter& w) const {
  w.WriteString(text_);
  w.WriteInt(prints_);
  w.WriteInt(continuations_);
  // Callback counters travel too, so tests can observe ordering across the
  // move (PreDeparture runs before marshal; PostDeparture after).
  w.WriteInt(pre_departures);
  w.WriteInt(pre_arrivals);
  w.WriteInt(post_arrivals);
  w.WriteInt(post_departures);
}

void Message::Deserialize(serial::GraphReader& r) {
  text_ = r.ReadString();
  prints_ = static_cast<int>(r.ReadInt());
  continuations_ = static_cast<int>(r.ReadInt());
  pre_departures = static_cast<int>(r.ReadInt());
  pre_arrivals = static_cast<int>(r.ReadInt());
  post_arrivals = static_cast<int>(r.ReadInt());
  post_departures = static_cast<int>(r.ReadInt());
}

// ---- Counter ----------------------------------------------------------------

Counter::Counter() {
  methods().Register("increment", [this](const std::vector<Value>& args) {
    value_ += args.empty() ? 1 : args[0].AsInt();
    return Value(value_);
  });
  methods().Register("get",
                     [this](const std::vector<Value>&) { return Value(value_); });
}

void Counter::Serialize(serial::GraphWriter& w) const { w.WriteInt(value_); }
void Counter::Deserialize(serial::GraphReader& r) { value_ = r.ReadInt(); }

// ---- OpLedger ---------------------------------------------------------------

OpLedger::OpLedger() {
  methods().Register("apply", [this](const std::vector<Value>& args) {
    const std::int64_t op_id = args.at(0).AsInt();
    const std::int64_t inc = args.size() > 1 ? args[1].AsInt() : 1;
    if (!seen_.insert(op_id).second) ++dups_;
    total_ += inc;
    return Value(total_);
  });
  methods().Register("get",
                     [this](const std::vector<Value>&) { return Value(total_); });
  methods().Register("dups",
                     [this](const std::vector<Value>&) { return Value(dups_); });
  methods().Register("ops", [this](const std::vector<Value>&) {
    return Value(static_cast<std::int64_t>(seen_.size()));
  });
  methods().Register("has", [this](const std::vector<Value>& args) {
    return Value(static_cast<std::int64_t>(seen_.count(args.at(0).AsInt())));
  });
}

void OpLedger::Serialize(serial::GraphWriter& w) const {
  w.WriteInt(total_);
  w.WriteInt(dups_);
  w.WriteInt(static_cast<std::int64_t>(seen_.size()));
  for (std::int64_t id : seen_) w.WriteInt(id);
}

void OpLedger::Deserialize(serial::GraphReader& r) {
  total_ = r.ReadInt();
  dups_ = r.ReadInt();
  const std::int64_t n = r.ReadInt();
  seen_.clear();
  for (std::int64_t i = 0; i < n; ++i) seen_.insert(r.ReadInt());
}

// ---- Data -------------------------------------------------------------------

Data::Data() {
  methods().Register("read", [this](const std::vector<Value>&) {
    ++reads_;
    return Value(static_cast<std::int64_t>(payload_.size()));
  });
  methods().Register("resize", [this](const std::vector<Value>& args) {
    payload_.assign(static_cast<std::size_t>(args.at(0).AsInt()), 0xab);
    return Value();
  });
  methods().Register("reads",
                     [this](const std::vector<Value>&) { return Value(reads_); });
}

Data::Data(std::size_t payload_bytes) : Data() {
  payload_.assign(payload_bytes, 0xab);
}

void Data::Serialize(serial::GraphWriter& w) const {
  w.WriteBytes(payload_);
  w.WriteInt(reads_);
}

void Data::Deserialize(serial::GraphReader& r) {
  payload_ = r.ReadBytes();
  reads_ = r.ReadInt();
}

// ---- Worker -----------------------------------------------------------------

Worker::Worker() {
  methods().Register("bind", [this](const std::vector<Value>& args) {
    data_ = core()->RefTo<Data>(args.at(0));
    if (args.size() > 1)
      core::Core::GetMetaRef(data_).SetRelocator(
          core::MakeRelocator(args[1].AsString()));
    return Value();
  });
  methods().Register("work", [this](const std::vector<Value>&) {
    if (!data_) throw FargoError("worker has no data source");
    ++work_done_;
    return data_.Call("read");
  });
  methods().Register("workDone", [this](const std::vector<Value>&) {
    return Value(work_done_);
  });
  methods().Register("dataBound", [this](const std::vector<Value>&) {
    return Value(static_cast<bool>(data_));
  });
  methods().Register("dataLocation", [this](const std::vector<Value>&) {
    return Value(
        static_cast<std::int64_t>(core()->ResolveLocation(data_).value));
  });
  methods().Register("refType", [this](const std::vector<Value>&) {
    if (!data_) return Value("unbound");
    return Value(std::string(core::Core::GetMetaRef(data_).GetRelocator()->Kind()));
  });
}

void Worker::Serialize(serial::GraphWriter& w) const {
  data_.SerializeTo(w);
  w.WriteInt(work_done_);
}

void Worker::Deserialize(serial::GraphReader& r) {
  data_.DeserializeFrom(r);
  work_done_ = r.ReadInt();
}

// ---- Printer ----------------------------------------------------------------

Printer::Printer() {
  methods().Register("print", [this](const std::vector<Value>& args) {
    ++jobs_;
    std::string text = args.empty() ? "" : args[0].AsString();
    return Value("printed '" + text + "' at " + core()->name());
  });
  methods().Register("jobs",
                     [this](const std::vector<Value>&) { return Value(jobs_); });
}

void Printer::Serialize(serial::GraphWriter& w) const { w.WriteInt(jobs_); }
void Printer::Deserialize(serial::GraphReader& r) { jobs_ = r.ReadInt(); }

// ---- Node -------------------------------------------------------------------

Node::Node() {
  methods().Register("setTag", [this](const std::vector<Value>& args) {
    tag_ = args.at(0).AsInt();
    return Value();
  });
  methods().Register("tag",
                     [this](const std::vector<Value>&) { return Value(tag_); });
  methods().Register("setNext", [this](const std::vector<Value>& args) {
    next_ = core()->RefTo<Node>(args.at(0));
    if (args.size() > 1)
      core::Core::GetMetaRef(next_).SetRelocator(
          core::MakeRelocator(args[1].AsString()));
    return Value();
  });
  // Sums the tags along the chain, `depth` hops deep.
  methods().Register("sum", [this](const std::vector<Value>& args) {
    std::int64_t depth = args.at(0).AsInt();
    if (depth <= 0 || !next_) return Value(tag_);
    return Value(tag_ + next_.Call("sum", {Value(depth - 1)}).AsInt());
  });
  methods().Register("hasNext", [this](const std::vector<Value>&) {
    return Value(static_cast<bool>(next_));
  });
  methods().Register("nextType", [this](const std::vector<Value>&) {
    if (!next_) return Value("unbound");
    return Value(std::string(core::Core::GetMetaRef(next_).GetRelocator()->Kind()));
  });
}

void Node::Serialize(serial::GraphWriter& w) const {
  next_.SerializeTo(w);
  w.WriteInt(tag_);
}

void Node::Deserialize(serial::GraphReader& r) {
  next_.DeserializeFrom(r);
  tag_ = r.ReadInt();
}

// ---- TreeNode / Holder -------------------------------------------------------

void TreeNode::Serialize(serial::GraphWriter& w) const {
  w.WriteInt(value);
  w.WriteObject(left);
  w.WriteObject(right);
  counter.SerializeTo(w);
}

void TreeNode::Deserialize(serial::GraphReader& r) {
  value = r.ReadInt();
  left = r.ReadObjectAs<TreeNode>();
  right = r.ReadObjectAs<TreeNode>();
  counter.DeserializeFrom(r);
}

Holder::Holder() {
  methods().Register("rootValue", [this](const std::vector<Value>&) {
    return Value(root ? root->value : -1);
  });
  methods().Register("sharedChildren", [this](const std::vector<Value>&) {
    return Value(root && root->left != nullptr && root->left == root->right);
  });
  methods().Register("bump", [this](const std::vector<Value>&) {
    if (root && root->counter) return root->counter.Call("increment");
    return Value();
  });
}

void Holder::Serialize(serial::GraphWriter& w) const { w.WriteObject(root); }

void Holder::Deserialize(serial::GraphReader& r) {
  root = r.ReadObjectAs<TreeNode>();
}

}  // namespace fargo::testing
