// Unit suite for benchgate (tools/benchgate/), the deterministic perf-gate
// comparator. Covers the comparison semantics (exact match, regression,
// improvement, missing/extra metric, malformed input), the directory walk,
// the --update round-trip, and the checked-in injected-regression fixture
// CI uses to prove the gate actually fails.

#include "tools/benchgate/gate.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fargo::benchgate {
namespace {

namespace fs = std::filesystem;

std::string Doc(const std::string& bench, const std::string& deterministic,
                const std::string& wallclock = "") {
  return "{\n  \"bench\": \"" + bench + "\",\n  \"schema\": 1,\n" +
         "  \"deterministic\": {" + deterministic + "},\n" +
         "  \"wallclock\": {" + wallclock + "}\n}\n";
}

const std::string kBase =
    Doc("demo", "\"a.msgs\": 10, \"a.sim_ns\": 500");

/// A scratch directory wiped on destruction.
struct TempDir {
  TempDir() {
    path = fs::temp_directory_path() /
           ("benchgate_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path Sub(const std::string& name) const {
    fs::path p = path / name;
    fs::create_directories(p);
    return p;
  }
  void Put(const fs::path& dir, const std::string& file,
           const std::string& text) const {
    std::ofstream(dir / file, std::ios::trunc) << text;
  }
  fs::path path;
};

// ==== ParseDeterministic =====================================================

TEST(Parse, ExtractsSortedIntegerMetrics) {
  const auto m = ParseDeterministic(kBase);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at("a.msgs"), 10u);
  EXPECT_EQ(m.at("a.sim_ns"), 500u);
}

TEST(Parse, IgnoresWallclock) {
  const auto m = ParseDeterministic(
      Doc("demo", "\"a.msgs\": 10", "\"host_seconds\": 1.25"));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_FALSE(m.contains("host_seconds"));
}

TEST(Parse, RejectsMalformedInput) {
  EXPECT_THROW(ParseDeterministic("{nope"), std::exception);
  EXPECT_THROW(ParseDeterministic("{\"schema\": 1}"), std::exception);
  EXPECT_THROW(ParseDeterministic(Doc("d", "\"x\": 1.5")), std::exception);
  EXPECT_THROW(ParseDeterministic(Doc("d", "\"x\": -3")), std::exception);
}

// ==== CompareFiles ===========================================================

TEST(Compare, IdenticalRunPasses) {
  const FileResult r = CompareFiles("demo", kBase, kBase);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_TRUE(r.improvements.empty());
  EXPECT_TRUE(r.errors.empty());
}

TEST(Compare, WallclockDifferencesAreIgnored) {
  const std::string run =
      Doc("demo", "\"a.msgs\": 10, \"a.sim_ns\": 500", "\"host_seconds\": 9");
  EXPECT_TRUE(CompareFiles("demo", kBase, run).ok());
}

TEST(Compare, AnyIncreaseIsARegression) {
  const std::string run = Doc("demo", "\"a.msgs\": 11, \"a.sim_ns\": 500");
  const FileResult r = CompareFiles("demo", kBase, run);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_NE(r.regressions[0].find("a.msgs"), std::string::npos);
  EXPECT_NE(r.regressions[0].find("10 -> 11"), std::string::npos);
}

TEST(Compare, DecreaseIsAnImprovementAndStillPasses) {
  const std::string run = Doc("demo", "\"a.msgs\": 7, \"a.sim_ns\": 500");
  const FileResult r = CompareFiles("demo", kBase, run);
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.improvements.size(), 1u);
  EXPECT_NE(r.improvements[0].find("a.msgs"), std::string::npos);
  // The human report carries the re-baseline hint.
  GateResult g;
  g.files.push_back(r);
  EXPECT_NE(FormatReport(g).find("--update"), std::string::npos);
}

TEST(Compare, MetricMissingFromRunFails) {
  const std::string run = Doc("demo", "\"a.msgs\": 10");
  const FileResult r = CompareFiles("demo", kBase, run);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("a.sim_ns"), std::string::npos);
}

TEST(Compare, ExtraMetricInRunFails) {
  const std::string run =
      Doc("demo", "\"a.msgs\": 10, \"a.sim_ns\": 500, \"a.new\": 1");
  const FileResult r = CompareFiles("demo", kBase, run);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("a.new"), std::string::npos);
  EXPECT_NE(r.errors[0].find("--update"), std::string::npos);
}

TEST(Compare, MalformedBaselineIsAnErrorNotACrash) {
  const FileResult r = CompareFiles("demo", "{broken", kBase);
  EXPECT_FALSE(r.ok());
  ASSERT_EQ(r.errors.size(), 1u);
}

// ==== CompareDirs ============================================================

TEST(Dirs, MatchingTreePasses) {
  TempDir t;
  const fs::path base = t.Sub("base"), run = t.Sub("run");
  t.Put(base, "BENCH_demo.json", kBase);
  t.Put(run, "BENCH_demo.json", kBase);
  const GateResult g = CompareDirs(base.string(), run.string());
  EXPECT_TRUE(g.ok());
  ASSERT_EQ(g.files.size(), 1u);
  EXPECT_EQ(g.files[0].bench, "demo");
}

TEST(Dirs, RunFileWithoutBaselineFails) {
  TempDir t;
  const fs::path base = t.Sub("base"), run = t.Sub("run");
  t.Put(run, "BENCH_demo.json", kBase);
  const GateResult g = CompareDirs(base.string(), run.string());
  EXPECT_FALSE(g.ok());
  ASSERT_EQ(g.errors.size(), 1u);
  EXPECT_NE(g.errors[0].find("no baseline"), std::string::npos);
}

TEST(Dirs, BaselineWithoutRunFileFails) {
  TempDir t;
  const fs::path base = t.Sub("base"), run = t.Sub("run");
  t.Put(base, "BENCH_demo.json", kBase);
  const GateResult g = CompareDirs(base.string(), run.string());
  EXPECT_FALSE(g.ok());
  ASSERT_EQ(g.errors.size(), 1u);
  EXPECT_NE(g.errors[0].find("did not run"), std::string::npos);
}

TEST(Dirs, MissingBaselineDirSuggestsUpdate) {
  TempDir t;
  const fs::path run = t.Sub("run");
  const GateResult g =
      CompareDirs((t.path / "nope").string(), run.string());
  EXPECT_FALSE(g.ok());
  ASSERT_EQ(g.errors.size(), 1u);
  EXPECT_NE(g.errors[0].find("--update"), std::string::npos);
}

// ==== --update ===============================================================

TEST(Update, RoundTripsToAPassingGate) {
  TempDir t;
  const fs::path base = t.Sub("base"), run = t.Sub("run");
  const std::string doc = Doc("demo", "\"b.allocs\": 3, \"a.msgs\": 12",
                              "\"host_seconds\": 0.5");
  t.Put(run, "BENCH_demo.json", doc);
  std::string error;
  ASSERT_TRUE(UpdateBaselines(base.string(), run.string(), &error)) << error;
  EXPECT_TRUE(CompareDirs(base.string(), run.string()).ok());
}

TEST(Update, CanonicalisesBaselines) {
  // Baselines keep the deterministic metrics (sorted) and drop wallclock:
  // host noise must never be checked in.
  const std::string canon = CanonicalBaseline(
      Doc("demo", "\"b.allocs\": 3, \"a.msgs\": 12", "\"host_seconds\": 9"));
  EXPECT_EQ(canon.find("host_seconds"), std::string::npos);
  EXPECT_NE(canon.find("\"wallclock\": {}"), std::string::npos);
  EXPECT_LT(canon.find("a.msgs"), canon.find("b.allocs"));
  // Canonical form is a fixed point.
  EXPECT_EQ(CanonicalBaseline(canon), canon);
}

TEST(Update, FailsCleanlyOnEmptyRunDir) {
  TempDir t;
  const fs::path base = t.Sub("base"), run = t.Sub("run");
  std::string error;
  EXPECT_FALSE(UpdateBaselines(base.string(), run.string(), &error));
  EXPECT_NE(error.find("no BENCH_"), std::string::npos);
}

// ==== the CI injected-regression fixture =====================================

// CI runs benchgate over these exact directories and asserts a non-zero
// exit; this test keeps the fixture honest so that step cannot rot into a
// vacuous pass.
TEST(Fixture, InjectedRegressionFailsTheGate) {
  const std::string root = BENCHGATE_FIXTURES;
  const GateResult g = CompareDirs(root + "/baseline", root + "/regressed");
  EXPECT_FALSE(g.ok());
  ASSERT_EQ(g.files.size(), 1u);
  ASSERT_EQ(g.files[0].regressions.size(), 1u);
  EXPECT_NE(g.files[0].regressions[0].find("rpc.net_msgs"),
            std::string::npos);
  EXPECT_TRUE(g.files[0].errors.empty());
}

TEST(Fixture, BaselineAgainstItselfPasses) {
  const std::string root = BENCHGATE_FIXTURES;
  EXPECT_TRUE(CompareDirs(root + "/baseline", root + "/baseline").ok());
}

}  // namespace
}  // namespace fargo::benchgate
