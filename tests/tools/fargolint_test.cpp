// Golden-fixture suite for fargolint (tools/fargolint/).
//
// Each rule gets three fixtures: a positive (asserting the rule id AND the
// exact line), a suppressed variant (allow-with-reason), and a clean
// variant. Line numbers are computed from the fixture text itself
// (LineOf), so editing a fixture cannot silently desynchronise the
// assertion from the code.

#include "tools/fargolint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fargolint {
namespace {

std::vector<Finding> Lint1(const std::string& path, const std::string& src) {
  return Lint({SourceFile{path, src}});
}

/// 1-based line of the first occurrence of `needle`.
int LineOf(const std::string& src, const std::string& needle) {
  std::size_t at = src.find(needle);
  EXPECT_NE(at, std::string::npos) << "fixture lacks: " << needle;
  if (at == std::string::npos) return -1;
  return 1 + static_cast<int>(std::count(src.begin(), src.begin() + at, '\n'));
}

bool Has(const std::vector<Finding>& fs, const std::string& rule, int line) {
  for (const Finding& f : fs)
    if (f.rule == rule && f.line == line) return true;
  return false;
}

int CountRule(const std::vector<Finding>& fs, const std::string& rule) {
  int n = 0;
  for (const Finding& f : fs)
    if (f.rule == rule) ++n;
  return n;
}

std::string Dump(const std::vector<Finding>& fs) {
  std::string out;
  for (const Finding& f : fs)
    out += f.file + ":" + std::to_string(f.line) + " [" + f.rule + "] " +
           f.message + "\n";
  return out;
}

// ==== rule registry ==========================================================

TEST(Rules, StableIdsInStableOrder) {
  // AllRules() serves ids sorted, so --list-rules output is stable however
  // the family registration table is ordered.
  const std::vector<RuleInfo> rules = AllRules();
  const std::vector<std::string> expect = {
      "annotation",     "barrier-before-reply", "capture-ref",
      "capture-this",   "domain",               "domain-handoff",
      "domain-missing", "no-pump",              "switch-exhaustiveness",
      "thread",
      "unordered-iter", "unseeded-rng",         "wal-record-coverage",
      "wallclock",      "wire-asymmetry",       "wire-dup-marker",
      "wire-schema"};
  ASSERT_EQ(rules.size(), expect.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, expect[i]);
    EXPECT_FALSE(rules[i].summary.empty());
    if (i > 0) {
      EXPECT_LT(rules[i - 1].id, rules[i].id);
    }
  }
}

// ==== wallclock ==============================================================

TEST(Wallclock, FlagsChronoClocks) {
  const std::string src = R"(#include <chrono>
void F() {
  auto t = std::chrono::system_clock::now();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "wallclock", LineOf(src, "system_clock"))) << Dump(fs);
}

TEST(Wallclock, FlagsCTimeCalls) {
  const std::string src = R"(void F() {
  long t = time(nullptr);
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "wallclock", LineOf(src, "time(nullptr)"))) << Dump(fs);
}

TEST(Wallclock, MemberNamedTimeIsClean) {
  const std::string src = R"(void F(Span& s) {
  auto t = s.time();
  auto u = s->clock();
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "wallclock"), 0);
}

TEST(Wallclock, SimulatorIsExempt) {
  const std::string src = R"(void F() {
  auto t = std::chrono::steady_clock::now();
}
)";
  EXPECT_EQ(CountRule(Lint1("src/sim/clock.cpp", src), "wallclock"), 0);
}

TEST(Wallclock, SuppressedWithReason) {
  const std::string src = R"(void F() {
  // fargolint: allow(wallclock) wall time is only logged, never branched on
  auto t = std::chrono::system_clock::now();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "wallclock"), 0) << Dump(fs);
  EXPECT_EQ(CountRule(fs, "annotation"), 0) << Dump(fs);
}

// ==== unseeded-rng ===========================================================

TEST(UnseededRng, FlagsRandAndRandomDevice) {
  const std::string src = R"(#include <random>
int F() {
  std::random_device rd;
  return rand();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "unseeded-rng", LineOf(src, "random_device"))) << Dump(fs);
  EXPECT_TRUE(Has(fs, "unseeded-rng", LineOf(src, "rand()"))) << Dump(fs);
}

TEST(UnseededRng, DefaultConstructedEngineFlagged) {
  const std::string src = R"(#include <random>
void F() {
  std::mt19937 rng;
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "unseeded-rng", LineOf(src, "mt19937 rng"))) << Dump(fs);
}

TEST(UnseededRng, SeededEngineIsClean) {
  const std::string src = R"(#include <random>
void F(unsigned seed) {
  std::mt19937 rng(seed);
  std::mt19937_64 rng2{seed};
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "unseeded-rng"), 0);
}

// ==== thread =================================================================

TEST(Thread, FlagsStdThreadOutsideSim) {
  const std::string src = R"(#include <thread>
void F() {
  std::thread t([] {});
  t.join();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "thread", LineOf(src, "std::thread t"))) << Dump(fs);
}

TEST(Thread, UnqualifiedAndMemberUsesAreClean) {
  const std::string src = R"(void F(Pool& p) {
  int thread = 3;          // a variable merely named thread
  p.async(thread);         // a member function named async
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "thread"), 0);
}

TEST(Thread, MetricsRegistryIsExempt) {
  const std::string src = R"(#include <thread>
void F() { std::thread t([] {}); t.join(); }
)";
  EXPECT_EQ(CountRule(Lint1("src/monitor/metrics.cpp", src), "thread"), 0);
  EXPECT_EQ(CountRule(Lint1("src/sim/pump.cpp", src), "thread"), 0);
}

// ==== unordered-iter =========================================================

TEST(UnorderedIter, FlagsRangeForOverUnorderedMember) {
  const std::string src = R"(#include <unordered_map>
struct T {
  std::unordered_map<int, int> entries_;
  int Sum() const {
    int s = 0;
    for (const auto& [k, v] : entries_) s += v;
    return s;
  }
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_TRUE(Has(fs, "unordered-iter", LineOf(src, "for (const auto&")))
      << Dump(fs);
}

TEST(UnorderedIter, HeaderImplPairingSharesDecls) {
  // The member is declared unordered in the header; the loop lives in the
  // paired .cpp. Linting both as one batch must still flag the loop.
  const std::string hdr = R"(#include <unordered_map>
struct T {
  std::unordered_map<int, int> entries_;
  int Sum() const;
};
)";
  const std::string impl = R"(#include "t.h"
int T::Sum() const {
  int s = 0;
  for (const auto& [k, v] : entries_) s += v;
  return s;
}
)";
  auto fs = Lint({SourceFile{"src/core/t.h", hdr}, SourceFile{"src/core/t.cpp", impl}});
  EXPECT_TRUE(Has(fs, "unordered-iter", LineOf(impl, "for ("))) << Dump(fs);
  // And only in the impl: the header has no loop.
  EXPECT_EQ(CountRule(fs, "unordered-iter"), 1) << Dump(fs);
}

TEST(UnorderedIter, UnrelatedFilesDoNotShareDecls) {
  // `entries_` is unordered in a DIFFERENT stem: no pairing, no finding.
  const std::string other = R"(#include <unordered_map>
struct O { std::unordered_map<int, int> entries_; };
)";
  const std::string impl = R"(#include <map>
struct T {
  std::map<int, int> entries_;
  int Sum() const {
    int s = 0;
    for (const auto& [k, v] : entries_) s += v;
    return s;
  }
};
)";
  auto fs = Lint({SourceFile{"src/core/other.h", other},
                  SourceFile{"src/core/t.h", impl}});
  EXPECT_EQ(CountRule(fs, "unordered-iter"), 0) << Dump(fs);
}

TEST(UnorderedIter, OrderInsensitiveAnnotationSuppresses) {
  const std::string src = R"(#include <unordered_map>
struct T {
  std::unordered_map<int, int> entries_;
  int Sum() const {
    int s = 0;
    // fargolint: order-insensitive(summation commutes)
    for (const auto& [k, v] : entries_) s += v;
    return s;
  }
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_EQ(CountRule(fs, "unordered-iter"), 0) << Dump(fs);
  EXPECT_EQ(CountRule(fs, "annotation"), 0) << Dump(fs);
}

TEST(UnorderedIter, ClassicForLoopIsClean) {
  const std::string src = R"(#include <unordered_map>
struct T {
  std::unordered_map<int, int> entries_;
  bool Probe() const {
    for (int i = 0; i < 3; ++i)
      if (entries_.count(i)) return true;
    return false;
  }
};
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.h", src), "unordered-iter"), 0);
}

// ==== no-pump ================================================================

TEST(NoPump, FlagsBlockingCallInsideContinuation) {
  const std::string src = R"(void F(sim::Future<int> f, Core& core) {
  f.Then([&core](int v) {
    core.Invoke(v);
  });
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "no-pump", LineOf(src, "core.Invoke"))) << Dump(fs);
}

TEST(NoPump, TopLevelBlockingCallIsClean) {
  const std::string src = R"(int F(Core& core) {
  return core.Invoke(7);
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "no-pump"), 0);
}

TEST(NoPump, RegionMarkerBansToEndOfFile) {
  const std::string src = R"(void Above(sim::Scheduler& s) {
  s.Pump();
}
// fargolint: no-pump-region
void Below(sim::Scheduler& s) {
  s.Pump();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  ASSERT_EQ(CountRule(fs, "no-pump"), 1) << Dump(fs);
  const int marker = LineOf(src, "no-pump-region");
  for (const Finding& f : fs) {
    if (f.rule == "no-pump") {
      EXPECT_GT(f.line, marker);
    }
  }
}

TEST(NoPump, SuppressedWithReason) {
  const std::string src = R"(void F(sim::Future<int> f, Core& core) {
  f.Then([&core](int v) {
    // fargolint: allow(no-pump) test harness runs at top level of the pump
    core.Await(v);
  });
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "no-pump"), 0) << Dump(fs);
}

// ==== capture-ref ============================================================

TEST(CaptureRef, FlagsDefaultRefCaptureInSink) {
  const std::string src = R"(void F(sim::Scheduler& sched, int x) {
  sched.ScheduleAfter(5, [&] { Use(x); });
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "capture-ref", LineOf(src, "[&]"))) << Dump(fs);
}

TEST(CaptureRef, PlainLambdaIsClean) {
  const std::string src = R"(void F(std::vector<int>& v, int x) {
  std::sort(v.begin(), v.end(), [&](int a, int b) { return a + x < b; });
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "capture-ref"), 0);
}

TEST(CaptureRef, NamedRefCapturesAreClean) {
  // Only the DEFAULT capture is flagged; explicit `&name` is reviewable.
  const std::string src = R"(void F(sim::Scheduler& sched, Log& log) {
  sched.ScheduleAfter(5, [&log] { log.Flush(); });
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "capture-ref"), 0);
}

// ==== capture-this ===========================================================

TEST(CaptureThis, FlagsBareThisInScheduledLambda) {
  const std::string src = R"(void T::Arm(sim::Scheduler& sched) {
  sched.ScheduleAt(5, [this] { Fire(); });
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "capture-this", LineOf(src, "[this]"))) << Dump(fs);
}

TEST(CaptureThis, AliveFlagKeepaliveIsClean) {
  const std::string src = R"(void T::Arm(sim::Scheduler& sched) {
  sched.ScheduleAt(5, [this, alive = alive_] {
    if (!*alive) return;
    Fire();
  });
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "capture-this"), 0);
}

TEST(CaptureThis, SharedFromThisKeepaliveIsClean) {
  const std::string src = R"(void T::Arm(sim::Scheduler& sched) {
  sched.ScheduleAt(5, [this, self = shared_from_this()] { Fire(); });
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "capture-this"), 0);
}

TEST(CaptureThis, CopyCaptureOfStarThisIsClean) {
  const std::string src = R"(void T::Arm(sim::Scheduler& sched) {
  sched.ScheduleAt(5, [*this] { Fire(); });
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "capture-this"), 0);
}

TEST(CaptureThis, ThisOutsideSinkIsClean) {
  const std::string src = R"(int T::Sum(const std::vector<int>& v) {
  return std::count_if(v.begin(), v.end(), [this](int x) { return Ok(x); });
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "capture-this"), 0);
}

TEST(CaptureThis, SuppressedWithLifetimeArgument) {
  const std::string src = R"(void T::Arm(sim::Scheduler& sched) {
  // fargolint: allow(capture-this) T is owned by Runtime, which clears the queue first
  sched.ScheduleAt(5, [this] { Fire(); });
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "capture-this"), 0) << Dump(fs);
}

// ==== wire-asymmetry =========================================================

TEST(WireAsymmetry, FlagsDriftedField) {
  const std::string src = R"(void EncodeFoo(Writer& w, const Foo& m) {
  w.U32(m.a);
  w.U32(m.b);
}
Foo DecodeFoo(Reader& r) {
  Foo m;
  m.a = r.U32();
  return m;
}
)";
  auto fs = Lint1("src/core/wirefoo.h", src);
  // `b` is written but never read; flagged at the Encode definition.
  EXPECT_TRUE(Has(fs, "wire-asymmetry", LineOf(src, "void EncodeFoo")))
      << Dump(fs);
  ASSERT_EQ(CountRule(fs, "wire-asymmetry"), 1) << Dump(fs);
  EXPECT_NE(fs[0].message.find("'b'"), std::string::npos) << fs[0].message;
}

TEST(WireAsymmetry, SymmetricPairIsClean) {
  const std::string src = R"(void EncodeFoo(Writer& w, const Foo& m) {
  w.U32(m.a);
  w.U32(m.b);
}
Foo DecodeFoo(Reader& r) {
  Foo m;
  m.a = r.U32();
  m.b = r.U32();
  return m;
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/wirefoo.h", src), "wire-asymmetry"), 0);
}

TEST(WireAsymmetry, ScalarCodecsWithNoVisibleFieldsAreSkipped) {
  // ReadCoreId builds its value from the stream with no member accesses; an
  // empty field set on either side means "not verifiable", not "drifted".
  const std::string src = R"(void WriteCoreId(Writer& w, CoreId id) {
  w.U32(id.value);
}
CoreId ReadCoreId(Reader& r) {
  return CoreId{r.U32()};
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/wirefoo.h", src), "wire-asymmetry"), 0);
}

TEST(WireAsymmetry, CallSitesAreNotDefinitions) {
  const std::string src = R"(void Relay(Writer& w, Reader& r, const Foo& m) {
  EncodeFoo(w, m.body);
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/x.cpp", src), "wire-asymmetry"), 0);
}

TEST(WireAsymmetry, BatchCodecNestedFieldDriftIsFlagged) {
  // The formation batch-item codec writes nested session fields
  // (m.session.slot etc.); every level of the access chain is compared, so
  // dropping one nested field on the read side is drift, not noise.
  const std::string src = R"(void WriteBatchItem(Writer& w, const Message& m) {
  w.WriteU8(m.kind);
  w.WriteVarint(m.session.slot);
  w.WriteVarint(m.session.seq);
  w.WriteBytes(m.payload);
}
Message ReadBatchItem(Reader& r) {
  Message m;
  m.kind = r.ReadU8();
  m.session.slot = r.ReadVarint();
  m.payload = r.ReadBytes();
  return m;
}
)";
  auto fs = Lint1("src/net/formation.cpp", src);
  EXPECT_TRUE(Has(fs, "wire-asymmetry", LineOf(src, "void WriteBatchItem")))
      << Dump(fs);
  ASSERT_EQ(CountRule(fs, "wire-asymmetry"), 1) << Dump(fs);
  EXPECT_NE(fs[0].message.find("'seq'"), std::string::npos) << fs[0].message;
}

TEST(WireAsymmetry, SymmetricBatchCodecIsClean) {
  const std::string src = R"(void WriteBatchItem(Writer& w, const Message& m) {
  w.WriteU8(m.kind);
  w.WriteVarint(m.session.slot);
  w.WriteVarint(m.session.seq);
  w.WriteBytes(m.payload);
}
Message ReadBatchItem(Reader& r) {
  Message m;
  m.kind = r.ReadU8();
  m.session.slot = r.ReadVarint();
  m.session.seq = r.ReadVarint();
  m.payload = r.ReadBytes();
  return m;
}
)";
  EXPECT_EQ(
      CountRule(Lint1("src/net/formation.cpp", src), "wire-asymmetry"), 0);
}

TEST(WireAsymmetry, DirectoryPublishEpochDriftIsFlagged) {
  // The kDirectoryPublish codec carries the hint epoch between comlet/location
  // and the trace tail; a reader that forgets the stamp would silently
  // downgrade every publish to an assertion.
  const std::string src = R"(void EncodeDirectoryPublish(Writer& w, const DirectoryPublish& p) {
  WriteComletId(w, p.comlet);
  WriteCoreId(w, p.location);
  w.WriteVarint(p.epoch);
  w.WriteVarint(p.as_of);
}
DirectoryPublish DecodeDirectoryPublish(Reader& r) {
  DirectoryPublish p;
  p.comlet = ReadComletId(r);
  p.location = ReadCoreId(r);
  p.as_of = r.ReadVarint();
  return p;
}
)";
  auto fs = Lint1("src/core/wire.h", src);
  EXPECT_TRUE(
      Has(fs, "wire-asymmetry", LineOf(src, "void EncodeDirectoryPublish")))
      << Dump(fs);
  ASSERT_EQ(CountRule(fs, "wire-asymmetry"), 1) << Dump(fs);
  EXPECT_NE(fs[0].message.find("'epoch'"), std::string::npos) << fs[0].message;
}

TEST(WireAsymmetry, DirectoryCodecFamilyIsClean) {
  // The shapes of the real kDirectoryPublish / kDirectoryLookup / hint
  // codecs (src/core/wire.h): every field written is read back in order.
  const std::string src = R"(void EncodeDirectoryPublish(Writer& w, const DirectoryPublish& p) {
  WriteComletId(w, p.comlet);
  WriteCoreId(w, p.location);
  w.WriteVarint(p.epoch);
  w.WriteVarint(p.as_of);
}
DirectoryPublish DecodeDirectoryPublish(Reader& r) {
  DirectoryPublish p;
  p.comlet = ReadComletId(r);
  p.location = ReadCoreId(r);
  p.epoch = r.ReadVarint();
  p.as_of = r.ReadVarint();
  return p;
}
void WriteDirectoryHint(Writer& w, const DirectoryHint& h) {
  w.WriteBool(h.found);
  WriteCoreId(w, h.location);
  w.WriteVarint(h.epoch);
}
DirectoryHint ReadDirectoryHint(Reader& r) {
  DirectoryHint h;
  h.found = r.ReadBool();
  h.location = ReadCoreId(r);
  h.epoch = r.ReadVarint();
  return h;
}
)";
  EXPECT_EQ(CountRule(Lint1("src/core/wire.h", src), "wire-asymmetry"), 0);
}

// ==== wire-dup-marker ========================================================

TEST(WireDupMarker, FlagsSameFileDuplicate) {
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kRefA = 0x10;
inline constexpr std::uint8_t kRefB = 0x10;
)";
  auto fs = Lint1("src/core/proto.h", src);
  EXPECT_TRUE(Has(fs, "wire-dup-marker", LineOf(src, "kRefB"))) << Dump(fs);
}

TEST(WireDupMarker, DistinctValuesAreClean) {
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kRefA = 0x10;
inline constexpr std::uint8_t kRefB = 0x11;
)";
  EXPECT_EQ(CountRule(Lint1("src/core/proto.h", src), "wire-dup-marker"), 0);
}

TEST(WireDupMarker, CollisionWithWireHReservedValue) {
  // This is the PR-2 near-miss: wire.h reserves 0x54 for the trace tail,
  // which rides inside every payload; another protocol reusing the byte
  // would make an un-traced message parse as traced.
  const std::string wire = R"(#include <cstdint>
inline constexpr std::uint8_t kTraceTailMarker = 0x54;
)";
  const std::string other = R"(#include <cstdint>
inline constexpr std::uint8_t kMyMagic = 0x54;
)";
  auto fs = Lint({SourceFile{"src/core/wire.h", wire},
                  SourceFile{"src/monitor/proto.h", other}});
  ASSERT_EQ(CountRule(fs, "wire-dup-marker"), 1) << Dump(fs);
  EXPECT_EQ(fs[0].file, "src/monitor/proto.h");
  EXPECT_EQ(fs[0].line, LineOf(other, "kMyMagic"));
}

TEST(WireDupMarker, WiderConstantsAreOutOfScope) {
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint32_t kMagicA = 0xF00D;
inline constexpr std::uint32_t kMagicB = 0xF00D;
)";
  EXPECT_EQ(CountRule(Lint1("src/core/proto.h", src), "wire-dup-marker"), 0);
}

// ==== annotation hygiene =====================================================

TEST(Annotation, AllowWithoutReasonIsFlagged) {
  const std::string src = R"(void F() {
  // fargolint: allow(wallclock)
  auto t = std::chrono::system_clock::now();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  // The malformed allow does NOT suppress, and is itself a finding.
  EXPECT_TRUE(Has(fs, "annotation", LineOf(src, "allow(wallclock)"))) << Dump(fs);
  EXPECT_EQ(CountRule(fs, "wallclock"), 1) << Dump(fs);
}

TEST(Annotation, UnknownRuleIsFlagged) {
  const std::string src = R"(// fargolint: allow(made-up-rule) because reasons
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "annotation", 1)) << Dump(fs);
}

TEST(Annotation, UnknownDirectiveIsFlagged) {
  const std::string src = R"(// fargolint: frobnicate everything
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "annotation", 1)) << Dump(fs);
}

TEST(Annotation, AllowForWrongRuleDoesNotSuppress) {
  const std::string src = R"(void F() {
  // fargolint: allow(thread) not the rule that fires here
  auto t = std::chrono::system_clock::now();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "wallclock"), 1) << Dump(fs);
}

TEST(Annotation, TrailingSameLineAllowSuppresses) {
  const std::string src =
      "void F() {\n"
      "  auto t = std::chrono::system_clock::now();  "
      "// fargolint: allow(wallclock) logged only\n"
      "}\n";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "wallclock"), 0) << Dump(fs);
}

TEST(Annotation, AllowTwoLinesAboveDoesNotSuppress) {
  // The contract is annotation-on-finding-line or directly above; a stale
  // annotation drifting away from its code must resurface the finding.
  const std::string src = R"(void F() {
  // fargolint: allow(wallclock) drifted away from its line
  int unrelated = 0;
  auto t = std::chrono::system_clock::now();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "wallclock"), 1) << Dump(fs);
}

// ==== wal-record-coverage ====================================================

TEST(WalRecordCoverage, FlagsMarkerWithMissingCodec) {
  // kWalNote has a writer but no reader: appended records would be
  // undecodable on recovery. Both missing directions are reported.
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kWalNote = 9;
inline constexpr std::uint8_t kWalPing = 10;
void WriteNoteRecord(Writer& w, const Rec& r) { w.U64(r.a); }
)";
  auto fs = Lint1("src/core/wal.h", src);
  const int line_note = LineOf(src, "kWalNote");
  const int line_ping = LineOf(src, "kWalPing");
  EXPECT_TRUE(Has(fs, "wal-record-coverage", line_note)) << Dump(fs);
  EXPECT_TRUE(Has(fs, "wal-record-coverage", line_ping)) << Dump(fs);
  // kWalNote lacks only the reader; kWalPing lacks both.
  EXPECT_EQ(CountRule(fs, "wal-record-coverage"), 3) << Dump(fs);
}

TEST(WalRecordCoverage, CompletePairIsClean) {
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kWalNote = 9;
void WriteNoteRecord(Writer& w, const Rec& r) { w.U64(r.a); }
Rec ReadNoteRecord(Reader& r) { Rec out; out.a = r.U64(); return out; }
)";
  auto fs = Lint1("src/core/wal.h", src);
  EXPECT_EQ(CountRule(fs, "wal-record-coverage"), 0) << Dump(fs);
}

TEST(WalRecordCoverage, CodecsInSiblingFileCountAcrossTheBatch) {
  // Markers in the header, codec definitions in the implementation file:
  // coverage is a batch-wide property, like wire.h marker reservation.
  const std::string hdr = R"(#include <cstdint>
inline constexpr std::uint8_t kWalNote = 9;
void WriteNoteRecord(Writer& w, const Rec& r);
Rec ReadNoteRecord(Reader& r);
)";
  const std::string impl = R"(void WriteNoteRecord(Writer& w, const Rec& r) {}
Rec ReadNoteRecord(Reader& r) { return {}; }
)";
  auto fs = Lint({SourceFile{"src/core/wal.h", hdr},
                  SourceFile{"src/core/wal.cpp", impl}});
  EXPECT_EQ(CountRule(fs, "wal-record-coverage"), 0) << Dump(fs);
}

TEST(WalRecordCoverage, DirPublishPairIsClean) {
  // The PR-8 directory-publish record (kWalDirPublish): marker plus both
  // codec directions, as in the real src/core/wal.h / wal.cpp.
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kWalDirPublish = 6;
void WriteDirPublishRecord(Writer& w, const WalRecord& r) {
  WriteComletId(w, r.comlet);
  WriteCoreId(w, r.location);
  w.WriteVarint(r.epoch);
  w.WriteInt(r.as_of);
}
WalRecord ReadDirPublishRecord(Reader& r) {
  WalRecord rec;
  rec.comlet = ReadComletId(r);
  rec.location = ReadCoreId(r);
  rec.epoch = r.ReadVarint();
  rec.as_of = r.ReadInt();
  return rec;
}
)";
  auto fs = Lint1("src/core/wal.h", src);
  EXPECT_EQ(CountRule(fs, "wal-record-coverage"), 0) << Dump(fs);
  EXPECT_EQ(CountRule(fs, "wire-asymmetry"), 0) << Dump(fs);
}

TEST(WalRecordCoverage, DirPublishWithoutReaderIsFlagged) {
  // A kWalDirPublish marker whose reader went missing: recovery could not
  // decode published locations and every replay would fail.
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kWalDirPublish = 6;
void WriteDirPublishRecord(Writer& w, const WalRecord& r) {
  WriteComletId(w, r.comlet);
}
)";
  auto fs = Lint1("src/core/wal.h", src);
  EXPECT_TRUE(
      Has(fs, "wal-record-coverage", LineOf(src, "kWalDirPublish")))
      << Dump(fs);
  EXPECT_EQ(CountRule(fs, "wal-record-coverage"), 1) << Dump(fs);
}

TEST(WalRecordCoverage, NonWalMarkersAreOutOfScope) {
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kWalrusByte = 9;
inline constexpr std::uint8_t kRequest = 1;
)";
  auto fs = Lint1("src/net/wire.h", src);
  EXPECT_EQ(CountRule(fs, "wal-record-coverage"), 0) << Dump(fs);
}

TEST(WalRecordCoverage, SuppressedWithReason) {
  const std::string src = R"(#include <cstdint>
// fargolint: allow(wal-record-coverage) retired kind kept for old logs
inline constexpr std::uint8_t kWalLegacy = 3;
)";
  auto fs = Lint1("src/core/wal.h", src);
  EXPECT_EQ(CountRule(fs, "wal-record-coverage"), 0) << Dump(fs);
}

// ==== ownership domains ======================================================

TEST(Domain, FlagsCrossDomainFieldAccessFromContinuation) {
  const std::string src = R"(// fargo: domain(tracker)
class TrackerTable {
 public:
  int entries_ = 0;
};
// fargo: domain(movement)
class MovementUnit {
 public:
  void Arm(Future<int> f) {
    f.Then([this](int v) {
      entries_ += v;
    });
  }
 private:
  int staged_ = 0;
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_TRUE(Has(fs, "domain", LineOf(src, "entries_ += v"))) << Dump(fs);
  EXPECT_EQ(CountRule(fs, "domain"), 1) << Dump(fs);
}

TEST(Domain, OwnFieldInOwnDomainIsClean) {
  const std::string src = R"(// fargo: domain(movement)
class MovementUnit {
 public:
  void Arm(Future<int> f) {
    f.Then([this](int v) {
      staged_ += v;
    });
  }
 private:
  int staged_ = 0;
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain"), 0) << Dump(fs);
}

TEST(Domain, FieldLevelOverrideBeatsClassDomain) {
  // A field handed to another domain: even the declaring class's own
  // continuations may not touch it.
  const std::string src = R"(// fargo: domain(core)
class Core {
 public:
  void Arm(Future<int> f) {
    f.Then([this](int v) {
      shared_counter_ += v;
    });
  }
 private:
  // fargo: domain(monitor)
  int shared_counter_ = 0;
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_TRUE(Has(fs, "domain", LineOf(src, "shared_counter_ += v")))
      << Dump(fs);
}

TEST(Domain, AmbiguousOwnerIsSkipped) {
  // `count_` is declared by two classes: the access cannot be attributed to
  // one owner, so the rule errs toward silence.
  const std::string src = R"(// fargo: domain(a)
class A {
 public:
  int count_ = 0;
};
// fargo: domain(b)
class B {
 public:
  int count_ = 0;
};
// fargo: domain(c)
class C {
 public:
  void Arm(Future<int> f) {
    f.Then([](int v) { count_ += v; });
  }
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain"), 0) << Dump(fs);
}

TEST(Domain, SuppressedWithReason) {
  const std::string src = R"(// fargo: domain(tracker)
class TrackerTable {
 public:
  int entries_ = 0;
};
// fargo: domain(movement)
class MovementUnit {
 public:
  void Arm(Future<int> f) {
    f.Then([this](int v) {
      // fargolint: allow(domain) stale read is fine: metric sampling only
      entries_ += v;
    });
  }
 private:
  int staged_ = 0;
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain"), 0) << Dump(fs);
  EXPECT_EQ(CountRule(fs, "annotation"), 0) << Dump(fs);
}

// ==== cross-locality handoffs (FARGO_PARALLEL) ===============================

TEST(DomainHandoff, FlagsUnlockedFieldAccessInHandoffClosure) {
  // A closure handed to Post runs on the destination locality's worker:
  // even the enclosing class's own same-domain field is cross-thread there.
  const std::string src = R"(// fargo: domain(net)
class Network {
 public:
  void Send(Message msg) {
    sched_.Post(msg.to.value, 0, [this] {
      delivered_ += 1;
    });
  }
 private:
  int delivered_ = 0;
};
)";
  auto fs = Lint1("src/net/x.h", src);
  EXPECT_TRUE(Has(fs, "domain-handoff", LineOf(src, "delivered_ += 1")))
      << Dump(fs);
  // The handoff semantics replace the inheritance-based check: no double
  // report from the plain `domain` rule.
  EXPECT_EQ(CountRule(fs, "domain"), 0) << Dump(fs);
}

TEST(DomainHandoff, LockedAccessIsClean) {
  const std::string src = R"(// fargo: domain(net)
class Network {
 public:
  void Send(Message msg) {
    sched_.PostAfter(msg.to.value, delay, [this] {
      std::lock_guard<std::mutex> lk(mu_);
      delivered_ += 1;
    });
  }
 private:
  std::mutex mu_;
  int delivered_ = 0;
};
)";
  auto fs = Lint1("src/net/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain-handoff"), 0) << Dump(fs);
}

TEST(DomainHandoff, ValueCaptureIsClean) {
  // Moving the data into the closure is the sanctioned handoff shape:
  // nothing implicit-this remains to race.
  const std::string src = R"(// fargo: domain(net)
class Network {
 public:
  void Send(Message msg) {
    sched_.Post(msg.to.value, 0, [m = std::move(msg)]() mutable {
      Deliver(std::move(m));
    });
  }
 private:
  int delivered_ = 0;
};
)";
  auto fs = Lint1("src/net/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain-handoff"), 0) << Dump(fs);
}

TEST(DomainHandoff, SuppressedWithReason) {
  const std::string src = R"(// fargo: domain(net)
class Network {
 public:
  void Send(Message msg) {
    sched_.Post(msg.to.value, 0, [this] {
      // fargolint: allow(domain-handoff) counter is a relaxed atomic
      delivered_ += 1;
    });
  }
 private:
  std::atomic<int> delivered_{0};
};
)";
  auto fs = Lint1("src/net/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain-handoff"), 0) << Dump(fs);
  EXPECT_EQ(CountRule(fs, "annotation"), 0) << Dump(fs);
}

TEST(DomainMissing, StatefulClassWithoutDomainIsFlagged) {
  const std::string src = R"(class Tracker {
 public:
  int hops_ = 0;
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_TRUE(Has(fs, "domain-missing", LineOf(src, "class Tracker")))
      << Dump(fs);
}

TEST(DomainMissing, AnnotatedClassIsClean) {
  const std::string src = R"(// fargo: domain(tracker)
class Tracker {
 public:
  int hops_ = 0;
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain-missing"), 0) << Dump(fs);
}

TEST(DomainMissing, OnlyCoreNetSimPathsAreSwept) {
  const std::string src = R"(class Render {
 public:
  int rows_ = 0;
};
)";
  auto fs = Lint1("src/shell/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain-missing"), 0) << Dump(fs);
}

TEST(DomainMissing, NestedClassInheritsEnclosingDomain) {
  const std::string src = R"(// fargo: domain(net)
class Network {
 public:
  struct Link {
    int bytes_ = 0;
  };
  int taps_ = 0;
};
)";
  auto fs = Lint1("src/net/x.h", src);
  EXPECT_EQ(CountRule(fs, "domain-missing"), 0) << Dump(fs);
}

TEST(DomainAnnotation, UnattachedDirectiveIsAFinding) {
  const std::string src = R"(// fargo: domain(core)
int free_counter = 0;
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_TRUE(Has(fs, "annotation", LineOf(src, "domain(core)"))) << Dump(fs);
}

TEST(DomainAnnotation, MalformedNameIsAFinding) {
  const std::string src = R"(// fargo: domain(no spaces allowed)
class Tracker {
 public:
  int hops_ = 0;
};
)";
  auto fs = Lint1("src/core/x.h", src);
  EXPECT_EQ(CountRule(fs, "annotation"), 1) << Dump(fs);
}

// ==== barrier-before-reply ===================================================

TEST(Barrier, FlagsAckAfterAppendWithoutBarrier) {
  // The PR 6 bug class, distilled: an exec record is appended and the slot
  // ack leaves before any durability barrier covers it.
  const std::string src = R"(void Ack(Wal* wal, Key key) {
  wal->AppendExec(key, kind, payload);
  SendSlotAck(key);
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(
      Has(fs, "barrier-before-reply", LineOf(src, "SendSlotAck(key);")))
      << Dump(fs);
}

TEST(Barrier, SendInsideWhenDurableContinuationIsClean) {
  const std::string src = R"(void Ack(Wal* wal, Key key) {
  wal->AppendExec(key, kind, payload);
  wal->WhenDurable().OnSettle([key](Future<Unit>) {
    SendSlotAck(key);
  });
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "barrier-before-reply"), 0) << Dump(fs);
}

TEST(Barrier, SyncContinuationAlsoCounts) {
  const std::string src = R"(void Publish(Wal* wal, Msg m) {
  wal->AppendDirPublish(m.comlet, m.location, m.epoch, m.now);
  wal->Sync().OnSettle([m](Future<Unit>) {
    SendReply(m);
  });
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "barrier-before-reply"), 0) << Dump(fs);
}

TEST(Barrier, UnconditionalReturnEndsThePath) {
  const std::string src = R"(void Ack(Wal* wal, Key key, bool durable) {
  if (durable) {
    wal->AppendExec(key, kind, payload);
    Park(key);
    return;
  }
  SendSlotAck(key);
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "barrier-before-reply"), 0) << Dump(fs);
}

TEST(Barrier, ConditionalReturnDoesNotEndThePath) {
  const std::string src = R"(void Ack(Wal* wal, Key key) {
  wal->AppendExec(key, kind, payload);
  if (!key.valid()) return;
  SendSlotAck(key);
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(
      Has(fs, "barrier-before-reply", LineOf(src, "SendSlotAck(key);")))
      << Dump(fs);
}

TEST(Barrier, AppendDefinitionDoesNotArmTheRule) {
  // `Wal::AppendExec(...) { ... }` is the definition, not a call; egress in
  // unrelated functions below it must not be blamed.
  const std::string src = R"(void Wal::AppendExec(Key key, int kind, Bytes payload) {
  Append(MakeRecord(key, kind, payload));
}
void Pong(Key key) {
  SendSlotAck(key);
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "barrier-before-reply"), 0) << Dump(fs);
}

TEST(Barrier, SuppressedWithReason) {
  const std::string src = R"(void Ack(Wal* wal, Key key) {
  wal->AppendExec(key, kind, payload);
  // fargolint: allow(barrier-before-reply) test-only shim: no peer observes this ack
  SendSlotAck(key);
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "barrier-before-reply"), 0) << Dump(fs);
  EXPECT_EQ(CountRule(fs, "annotation"), 0) << Dump(fs);
}

// ==== switch-exhaustiveness ==================================================

TEST(Switch, MissingEnumeratorWithoutDefaultIsFlagged) {
  const std::string src = R"(enum class Kind { kA, kB, kC };
void F(Kind k) {
  switch (k) {
    case Kind::kA: break;
    case Kind::kB: break;
  }
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "switch-exhaustiveness", LineOf(src, "switch (k)")))
      << Dump(fs);
}

TEST(Switch, SilentDefaultIsFlagged) {
  const std::string src = R"(enum class Kind { kA, kB };
void F(Kind k) {
  switch (k) {
    case Kind::kA: break;
    case Kind::kB: break;
    default: break;
  }
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "switch-exhaustiveness", LineOf(src, "switch (k)")))
      << Dump(fs);
}

TEST(Switch, ThrowingDefaultIsAnExplicitRejection) {
  const std::string src = R"(enum class Kind { kA, kB, kC };
void F(Kind k) {
  switch (k) {
    case Kind::kA: break;
    default: throw Error("unhandled kind");
  }
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "switch-exhaustiveness"), 0) << Dump(fs);
}

TEST(Switch, FullCoverageWithoutDefaultIsClean) {
  const std::string src = R"(enum class Kind { kA, kB };
void F(Kind k) {
  switch (k) {
    case Kind::kA: break;
    case Kind::kB: break;
  }
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "switch-exhaustiveness"), 0) << Dump(fs);
}

TEST(Switch, WalMarkerSwitchUsesTheMarkerFamily) {
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kWalPing = 1;
inline constexpr std::uint8_t kWalPong = 2;
void F(std::uint8_t kind) {
  switch (kind) {
    case kWalPing: break;
  }
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_TRUE(Has(fs, "switch-exhaustiveness", LineOf(src, "switch (kind)")))
      << Dump(fs);
}

TEST(Switch, NumericLabelsAreOutOfScope) {
  // Raw protocol bytes (the kCtrl* subkind switches): a corrupt byte
  // legitimately falls through, so these are not a checked family.
  const std::string src = R"(void F(int b) {
  switch (b) {
    case 3: break;
    case 4: break;
  }
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "switch-exhaustiveness"), 0) << Dump(fs);
}

TEST(Switch, UnresolvableLabelsAreOutOfScope) {
  const std::string src = R"(void F(int b) {
  switch (b) {
    case kSomewhereElse: break;
  }
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "switch-exhaustiveness"), 0) << Dump(fs);
}

TEST(Switch, SuppressedWithReason) {
  const std::string src = R"(enum class Kind { kA, kB };
void F(Kind k) {
  // fargolint: allow(switch-exhaustiveness) kB is handled by the caller
  switch (k) {
    case Kind::kA: break;
  }
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  EXPECT_EQ(CountRule(fs, "switch-exhaustiveness"), 0) << Dump(fs);
}

// ==== wire-schema ============================================================

TEST(WireSchema, WidthDriftWithSymmetricFieldsIsFlagged) {
  // Both sides touch the same fields, so wire-asymmetry is blind — but the
  // writer emits u8 where the reader parses varint.
  const std::string src = R"(void WritePing(Writer& w, const Ping& p) {
  w.WriteVarint(p.seq);
  w.WriteU8(p.flag);
}
Ping ReadPing(Reader& r) {
  Ping p;
  p.seq = r.ReadVarint();
  p.flag = r.ReadVarint();
  return p;
}
)";
  auto fs = Lint1("src/net/wire.h", src);
  EXPECT_TRUE(Has(fs, "wire-schema", LineOf(src, "void WritePing")))
      << Dump(fs);
  EXPECT_EQ(CountRule(fs, "wire-asymmetry"), 0) << Dump(fs);
}

TEST(WireSchema, TrailingFieldOnOneSideIsFlagged) {
  const std::string src = R"(void WritePing(Writer& w, const Ping& p) {
  w.WriteVarint(p.seq);
  w.WriteString(p.note);
}
Ping ReadPing(Reader& r) {
  Ping p;
  p.seq = r.ReadVarint();
  return p;
}
)";
  auto fs = Lint1("src/net/wire.h", src);
  EXPECT_TRUE(Has(fs, "wire-schema", LineOf(src, "void WritePing")))
      << Dump(fs);
}

TEST(WireSchema, PairsAcrossFilesInTheBatch) {
  const std::string enc = R"(void EncodePing(Writer& w, const Ping& p) {
  w.WriteVarint(p.seq);
}
)";
  const std::string dec = R"(Ping DecodePing(Reader& r) {
  Ping p;
  p.seq = r.ReadU8();
  return p;
}
)";
  auto fs = Lint({SourceFile{"src/net/enc.cpp", enc},
                  SourceFile{"src/net/dec.cpp", dec}});
  EXPECT_EQ(CountRule(fs, "wire-schema"), 1) << Dump(fs);
}

TEST(WireSchema, NestedCodecsAndOkMarkersPairUp) {
  const std::string src = R"(void WriteReply(Writer& w, const R& x) {
  WriteOk(w);
  WriteCoreId(w, x.id);
  w.WriteVarint(x.n);
}
R ReadReply(Reader& r) {
  CheckOk(r);
  R x;
  x.id = ReadCoreId(r);
  x.n = r.ReadVarint();
  return x;
}
)";
  auto fs = Lint1("src/net/wire.h", src);
  EXPECT_EQ(CountRule(fs, "wire-schema"), 0) << Dump(fs);
}

TEST(WireSchema, SerializerPrimitivesAreNotMessageCodecs) {
  // bytes.h-style primitive implementations: WriteInt's body is varint
  // zig-zag, graph.h wraps it — neither is a message, and pairing them
  // batch-wide would compare a primitive with its own wrapper.
  const std::string prim = R"(void WriteInt(std::int64_t v) {
  WriteVarint(ZigZag(v));
}
std::int64_t ReadInt() {
  return UnZigZag(ReadVarint());
}
)";
  const std::string wrap = R"(void WriteInt(std::int64_t v) { out_.WriteInt(v); }
std::int64_t ReadInt() { return in_.ReadInt(); }
)";
  auto fs = Lint({SourceFile{"src/serial/bytes.h", prim},
                  SourceFile{"src/serial/graph.h", wrap}});
  EXPECT_EQ(CountRule(fs, "wire-schema"), 0) << Dump(fs);
}

TEST(WireSchema, SuppressedWithReason) {
  const std::string src = R"(// fargolint: allow(wire-schema) hook-driven graph codec, ops interleave per reference
void WritePing(Writer& w, const Ping& p) {
  w.WriteVarint(p.seq);
}
Ping ReadPing(Reader& r) {
  Ping p;
  p.seq = r.ReadU8();
  return p;
}
)";
  auto fs = Lint1("src/net/wire.h", src);
  EXPECT_EQ(CountRule(fs, "wire-schema"), 0) << Dump(fs);
}

// ==== schema extraction ======================================================

TEST(Schema, EmitsDeterministicJson) {
  const std::string src = R"(#include <cstdint>
inline constexpr std::uint8_t kPing = 7;
enum class Phase { kIdle = 0, kBusy = 1 };
void WritePing(Writer& w, const Ping& p) {
  w.WriteU8(kPing);
  w.WriteVarint(p.seq);
}
Ping ReadPing(Reader& r) {
  Ping p;
  r.ReadU8();
  p.seq = r.ReadVarint();
  return p;
}
)";
  const std::string expect = R"({
  "schema": 1,
  "markers": [
    {"name": "kPing", "value": 7, "file": "src/net/wire.h"}
  ],
  "enums": [
    {"name": "Phase", "file": "src/net/wire.h", "enumerators": [["kIdle", 0], ["kBusy", 1]]}
  ],
  "messages": [
    {"name": "Ping", "encoder": "WritePing", "file": "src/net/wire.h", "ops": ["u8", "varint"]}
  ]
}
)";
  EXPECT_EQ(ExtractWireSchema({SourceFile{"src/net/wire.h", src}}), expect);
}

TEST(Schema, WidthDriftChangesTheDocument) {
  // The CI gate is a byte comparison; a varint->u8 width change must
  // produce a different document even when field names stay put.
  const std::string before = R"(void WritePing(Writer& w, const Ping& p) {
  w.WriteVarint(p.seq);
}
Ping ReadPing(Reader& r) {
  Ping p;
  p.seq = r.ReadVarint();
  return p;
}
)";
  std::string after = before;
  const std::string from = "w.WriteVarint(p.seq);";
  after.replace(after.find(from), from.size(), "w.WriteU8(p.seq);");
  const std::string doc_before =
      ExtractWireSchema({SourceFile{"src/net/wire.h", before}});
  const std::string doc_after =
      ExtractWireSchema({SourceFile{"src/net/wire.h", after}});
  EXPECT_NE(doc_before, doc_after);
}

TEST(Schema, UnpairedCodecsAndValuelessEnumsDegradeGracefully) {
  const std::string src = R"(enum class Mode { kAuto = kDefaultMode, kManual };
void WriteLone(Writer& w, const L& x) {
  w.WriteVarint(x.a);
}
)";
  const std::string doc = ExtractWireSchema({SourceFile{"src/net/wire.h", src}});
  // Unpaired encoder: no message entry. Non-literal initializer: value null.
  EXPECT_EQ(doc.find("WriteLone"), std::string::npos) << doc;
  EXPECT_NE(doc.find("[\"kAuto\", null]"), std::string::npos) << doc;
}

// ==== output contract ========================================================

TEST(Output, FindingsSortedByFileLineRule) {
  const std::string a = R"(void F() {
  auto t = std::chrono::system_clock::now();
  std::random_device rd;
}
)";
  const std::string b = R"(void G() {
  auto t = std::chrono::steady_clock::now();
}
)";
  auto fs = Lint({SourceFile{"src/core/b.cpp", b}, SourceFile{"src/core/a.cpp", a}});
  ASSERT_GE(fs.size(), 3u) << Dump(fs);
  for (std::size_t i = 1; i < fs.size(); ++i) {
    const bool ordered =
        fs[i - 1].file < fs[i].file ||
        (fs[i - 1].file == fs[i].file && fs[i - 1].line <= fs[i].line);
    EXPECT_TRUE(ordered) << Dump(fs);
  }
}

TEST(Output, ExcerptIsTheOffendingLine) {
  const std::string src = R"(void F() {
  auto t = std::chrono::system_clock::now();
}
)";
  auto fs = Lint1("src/core/x.cpp", src);
  ASSERT_EQ(fs.size(), 1u) << Dump(fs);
  EXPECT_EQ(fs[0].excerpt, "auto t = std::chrono::system_clock::now();");
}

}  // namespace
}  // namespace fargolint
