// The admin shell and the terminal layout monitor (Fig 4 substitute).
#include <gtest/gtest.h>

#include <sstream>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

class ShellTest : public FargoTest {
 protected:
  ShellTest() {
    cores = MakeCores(3);
    shell = std::make_unique<shell::Shell>(rt, *cores[0], out);
  }

  std::string Run(const std::string& line) {
    out.str("");
    shell->Execute(line);
    return out.str();
  }

  std::vector<core::Core*> cores;
  std::ostringstream out;
  std::unique_ptr<shell::Shell> shell;
};

TEST_F(ShellTest, CoresListsEveryCore) {
  std::string s = Run("cores");
  EXPECT_NE(s.find("core0"), std::string::npos);
  EXPECT_NE(s.find("core2"), std::string::npos);
  EXPECT_NE(s.find("up"), std::string::npos);
}

TEST_F(ShellTest, LsShowsComplets) {
  auto msg = cores[1]->New<Message>("x");
  std::string s = Run("ls core1");
  EXPECT_NE(s.find(ToString(msg.target())), std::string::npos);
  EXPECT_NE(s.find("test.Message"), std::string::npos);
}

TEST_F(ShellTest, MoveByIdAndByName) {
  auto msg = cores[1]->New<Message>("x");
  cores[1]->BindName("msg", msg);

  Run("move " + ToString(msg.target()) + " core2");
  EXPECT_TRUE(cores[2]->repository().Contains(msg.target()));

  Run("move msg core0");  // resolves the bound name
  EXPECT_TRUE(cores[0]->repository().Contains(msg.target()));
}

TEST_F(ShellTest, InvokeCallsMethods) {
  auto msg = cores[1]->New<Message>("shell-text");
  std::string s = Run("invoke " + ToString(msg.target()) + " text");
  EXPECT_NE(s.find("shell-text"), std::string::npos);
}

TEST_F(ShellTest, MethodsIntrospects) {
  auto msg = cores[1]->New<Message>("x");
  std::string s = Run("methods " + ToString(msg.target()));
  EXPECT_NE(s.find("print"), std::string::npos);
  EXPECT_NE(s.find("text"), std::string::npos);
}

TEST_F(ShellTest, RefTypeInspectionAndRetyping) {
  auto worker = cores[1]->New<Worker>();
  auto data = cores[1]->New<Data>(std::size_t{10});
  worker.Call("bind", {Value(data.handle())});

  std::string s = Run("reftype core1 " + ToString(worker.target()) + " " +
                      ToString(data.target()));
  EXPECT_NE(s.find("link"), std::string::npos);

  Run("setref core1 " + ToString(worker.target()) + " " +
      ToString(data.target()) + " pull");
  s = Run("reftype core1 " + ToString(worker.target()) + " " +
          ToString(data.target()));
  EXPECT_NE(s.find("pull"), std::string::npos);

  // The retype has real effect: moving the worker drags the data along.
  Run("move " + ToString(worker.target()) + " core2");
  EXPECT_TRUE(cores[2]->repository().Contains(data.target()));
}

TEST_F(ShellTest, ProfileReadsServices) {
  cores[1]->New<Message>("x");
  std::string s = Run("profile completLoad core1");
  EXPECT_NE(s.find("= 1"), std::string::npos);
  s = Run("profile bandwidth core0 core1");
  EXPECT_NE(s.find("bandwidth"), std::string::npos);
}

TEST_F(ShellTest, LinkReshapesTheNetwork) {
  Run("link core0 core1 25 2");
  net::LinkModel m = rt.network().GetLink(cores[0]->id(), cores[1]->id());
  EXPECT_EQ(m.latency, Millis(25));
  EXPECT_NEAR(m.bytes_per_sec, 2e6 / 8, 1);
}

TEST_F(ShellTest, GcReportsReclaimedTrackers) {
  std::string s = Run("gc core0");
  EXPECT_NE(s.find("reclaimed"), std::string::npos);
}

TEST_F(ShellTest, ErrorsAreReportedNotThrown) {
  EXPECT_NE(Run("move nosuch core1").find("error:"), std::string::npos);
  EXPECT_NE(Run("bogus_command").find("unknown command"), std::string::npos);
  EXPECT_NE(Run("move").find("error:"), std::string::npos);
}

TEST_F(ShellTest, QuitStopsTheLoop) {
  EXPECT_FALSE(shell->Execute("quit"));
  EXPECT_TRUE(shell->Execute(""));
}

TEST_F(ShellTest, ScriptCommandRunsInline) {
  auto msg = cores[1]->New<Message>("x");
  cores[1]->BindName("m", msg);
  Run("script move completsIn core1 to core2");
  EXPECT_TRUE(cores[2]->repository().Contains(msg.target()));
}

TEST_F(ShellTest, SnapshotRendersLayout) {
  auto worker = cores[1]->New<Worker>();
  auto data = cores[2]->New<Data>(std::size_t{10});
  worker.Call("bind", {Value(data.handle())});
  cores[1]->BindName("w", worker);
  std::string s = Run("snapshot");
  EXPECT_NE(s.find("core1"), std::string::npos);
  EXPECT_NE(s.find(ToString(worker.target())), std::string::npos);
  EXPECT_NE(s.find("<w>"), std::string::npos);
  EXPECT_NE(s.find("[link"), std::string::npos);  // the worker's reference
}

TEST_F(ShellTest, InteractiveLoopReadsUntilQuit) {
  std::istringstream in("cores\nquit\ncores\n");
  shell->RunInteractive(in, /*prompt=*/false);
  // Only the first "cores" ran; the third line was never read.
  EXPECT_NE(out.str().find("core0"), std::string::npos);
}

class TextMonitorTest : public FargoTest {};

TEST_F(TextMonitorTest, LiveEventsAreReported) {
  auto cores = MakeCores(2);
  std::ostringstream out;
  shell::TextMonitor monitor(rt, *cores[0], out);
  monitor.Attach();

  auto msg = cores[0]->New<Message>("m");
  cores[0]->Move(msg, cores[1]->id());
  rt.RunUntilIdle();

  std::string s = out.str();
  EXPECT_NE(s.find("arrived"), std::string::npos);
  EXPECT_NE(s.find("departed"), std::string::npos);
  EXPECT_GE(monitor.events_seen(), 3u);  // install + depart + arrive

  monitor.Detach();
  const auto seen = monitor.events_seen();
  cores[1]->New<Message>("quiet");
  rt.RunUntilIdle();
  EXPECT_EQ(monitor.events_seen(), seen);
}

TEST_F(TextMonitorTest, ShutdownIsAnnounced) {
  auto cores = MakeCores(2);
  std::ostringstream out;
  shell::TextMonitor monitor(rt, *cores[0], out);
  monitor.Attach();
  cores[1]->Shutdown(Millis(100));
  rt.RunUntilIdle();
  EXPECT_NE(out.str().find("shutting down"), std::string::npos);
}

}  // namespace
}  // namespace fargo::testing
