#include "src/common/value.h"

#include <gtest/gtest.h>

#include "src/serial/value_codec.h"

namespace fargo {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.IsNull());
  EXPECT_EQ(v.tag(), Value::Tag::kNull);
}

TEST(ValueTest, ScalarAccessors) {
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(std::int64_t{-42}).AsInt(), -42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
  EXPECT_EQ(Value(7).AsInt(), 7);  // int convenience constructor
}

TEST(ValueTest, AsRealAcceptsInts) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).AsReal(), 3.0);
}

TEST(ValueTest, TypeMismatchThrows) {
  EXPECT_THROW(Value("s").AsInt(), TypeError);
  EXPECT_THROW(Value(std::int64_t{1}).AsString(), TypeError);
  EXPECT_THROW(Value().AsBool(), TypeError);
  EXPECT_THROW(Value("s").AsReal(), TypeError);
}

TEST(ValueTest, ListsAndMaps) {
  Value::List l{Value(1), Value("two")};
  Value vl(l);
  EXPECT_EQ(vl.AsList().size(), 2u);
  EXPECT_EQ(vl.AsList()[1].AsString(), "two");

  Value::Map m;
  m["k"] = Value(9);
  Value vm(std::move(m));
  EXPECT_EQ(vm.AsMap().at("k").AsInt(), 9);
}

TEST(ValueTest, HandleAndBlob) {
  ComletHandle h{ComletId{CoreId{3}, 7}, CoreId{2}, "T"};
  Value v(h);
  EXPECT_TRUE(v.IsHandle());
  EXPECT_EQ(v.AsHandle().id.seq, 7u);

  ObjectBlob b{"T", {1, 2, 3}};
  Value vb(b);
  EXPECT_TRUE(vb.IsBlob());
  EXPECT_EQ(vb.AsBlob().bytes.size(), 3u);
}

TEST(ValueTest, MutableAccessorsEditInPlace) {
  Value list(Value::List{Value(1)});
  list.MutableList().push_back(Value(2));
  EXPECT_EQ(list.AsList().size(), 2u);
  Value map(Value::Map{});
  map.MutableMap()["k"] = Value("v");
  EXPECT_EQ(map.AsMap().at("k").AsString(), "v");
  EXPECT_THROW(list.MutableMap(), TypeError);
  EXPECT_THROW(map.MutableList(), TypeError);
}

TEST(ValueTest, EqualityAndDebugStrings) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_EQ(Value("x").ToDebugString(), "\"x\"");
  EXPECT_EQ(Value().ToDebugString(), "null");
  Value::List l{Value(1), Value(2)};
  EXPECT_EQ(Value(l).ToDebugString(), "[1, 2]");
}

TEST(ValueCodecTest, RoundTripsEveryTag) {
  Value::Map m;
  m["a"] = Value(1);
  m["b"] = Value(Value::List{Value(true), Value(2.5), Value()});
  std::vector<Value> values = {
      Value(),
      Value(false),
      Value(std::int64_t{-1234567890123}),
      Value(3.14159),
      Value("unicode \xc3\xa9 text"),
      Value(std::vector<std::uint8_t>{0, 255, 7}),
      Value(std::move(m)),
      Value(ComletHandle{ComletId{CoreId{1}, 2}, CoreId{3}, "test.T"}),
      Value(ObjectBlob{"test.T", {9, 8, 7}}),
  };
  for (const Value& v : values) {
    auto bytes = serial::EncodeValue(v);
    EXPECT_EQ(serial::DecodeValue(bytes), v) << v.ToDebugString();
  }
}

TEST(ValueCodecTest, RoundTripsArgumentVectors) {
  std::vector<Value> args{Value(1), Value("x"), Value()};
  serial::Writer w;
  serial::WriteValues(w, args);
  serial::Reader r(w.buffer());
  EXPECT_EQ(serial::ReadValues(r), args);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ValueCodecTest, TruncatedInputThrows) {
  auto bytes = serial::EncodeValue(Value("hello world"));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(serial::DecodeValue(bytes), serial::SerialError);
}

}  // namespace
}  // namespace fargo
