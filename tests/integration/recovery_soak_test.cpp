// Recovery soak: 10,000 non-idempotent operations against a moving
// OpLedger while durable Cores crash and restart underneath — some on a
// chaos schedule (crash + restart_after), most in forced cycles aimed at
// the cores the ledger lives on or is moving between. The WAL must hand
// every restarted Core its state back, the two-phase move protocol must
// keep the ledger existing exactly once, and the durable replay windows must
// keep every operation executing exactly once: the ledger records every op
// id it has ever applied, so a lost Core image or a replayed execution is
// caught exactly.
#include <gtest/gtest.h>

#include <random>

#include "src/core/wal.h"
#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

class RecoverySoakTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RecoverySoakTest, CrashRestartCyclesNeverLoseOrDoubleApply) {
  const std::uint32_t seed = GetParam();
  RegisterTestComlets();
  core::Runtime rt;
  const std::size_t kCores = 4;
  std::vector<core::Core*> cores;
  for (std::size_t i = 0; i < kCores; ++i)
    cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
  rt.network().SetDefaultLink(net::LinkModel{Millis(2), 1e7, true});

  core::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = Millis(25);
  policy.seed = seed;
  for (core::Core* c : cores) {
    c->SetRpcTimeout(Millis(200));
    c->SetRetryPolicy(policy);
    // Tight checkpoints: recoveries replay a short tail, and the soak
    // crosses many checkpoint/truncate boundaries.
    c->EnableWal(Millis(200));
  }

  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.03;
  plan.duplicate = 0.02;
  plan.reorder = 0.05;
  plan.reorder_jitter = Millis(8);
  // Scheduled whole-Core outages with automatic restart (the chaos-driven
  // path through Runtime's restart handler), spread across the run.
  for (int i = 0; i < 6; ++i)
    plan.crashes.push_back(net::FaultPlan::CoreCrash{
        cores[3]->id(), Seconds(2) + Seconds(4) * i, Millis(60)});
  rt.network().SetFaultPlan(plan);

  auto ledger = cores[0]->New<OpLedger>();
  std::size_t model_at = 0;
  rt.RunUntilIdle();

  auto resolve_ground_truth = [&] {
    for (std::size_t c = 0; c < kCores; ++c)
      if (cores[c]->repository().Contains(ledger.target())) model_at = c;
  };
  auto heal_routes = [&] {
    resolve_ground_truth();
    for (std::size_t c = 0; c < kCores; ++c) {
      if (c == model_at || !cores[c]->alive()) continue;
      cores[c]->trackers().SetForward(ledger.target(), cores[model_at]->id(),
                                      std::string(OpLedger::kTypeName));
    }
  };

  const int kOps = 10000;
  int successes = 0;
  int failures = 0;
  std::mt19937 rng(seed);

  for (int op = 0; op < kOps; ++op) {
    if (op > 0 && op % 500 == 0) {
      // Forced crash cycle around a move: start a move of the ledger, then
      // kill the source or the destination mid-protocol and restart it.
      // Recovery (replay + in-doubt resolution against the peer) must
      // leave exactly one ledger.
      resolve_ground_truth();
      const std::size_t dest = (model_at + 1 + rng() % (kCores - 1)) % kCores;
      cores[model_at]->MoveIdAsync(ledger.target(), cores[dest]->id());
      rt.RunFor(Millis(rng() % 15));
      core::Core* victim = (rng() % 2 == 0) ? cores[model_at] : cores[dest];
      if (victim->alive()) victim->Crash();
      rt.RunFor(Millis(50));
      victim->Restart();
      // Let recovery, in-doubt queries and straggler retries settle.
      rt.RunFor(Millis(1500));
      heal_routes();
    } else if (op % 250 == 0) {
      // Plain re-layout between crash cycles.
      const std::size_t dest = rng() % kCores;
      try {
        cores[model_at]->MoveId(ledger.target(), cores[dest]->id());
        model_at = dest;
      } catch (const FargoError&) {
        heal_routes();
      }
    }
    std::size_t from = rng() % kCores;
    if (!cores[from]->alive()) from = model_at;
    auto stub = cores[from]->RefTo<OpLedger>(ledger.handle());
    try {
      stub.Invoke<std::int64_t>("apply", static_cast<std::int64_t>(op));
      ++successes;
    } catch (const FargoError&) {
      // Retries exhausted across an outage. The op may have executed once
      // (reply lost) — never twice, which the ledger audit proves.
      ++failures;
      heal_routes();
    }
  }

  // Heal the world and drain: no faults, everything alive, all retries and
  // recovery queries settled.
  rt.network().ClearFaults();
  for (core::Core* c : cores)
    if (!c->alive()) c->Restart();
  rt.RunUntilIdle();

  // Exactly one ledger survives, hosted somewhere, with zero re-executions
  // and an executed-op count bracketed by what the clients observed.
  int copies = 0;
  const OpLedger* anchor = nullptr;
  for (core::Core* c : cores) {
    if (auto a = c->repository().Get(ledger.target())) {
      ++copies;
      anchor = static_cast<const OpLedger*>(a.get());
    }
  }
  ASSERT_EQ(copies, 1) << "ledger lost or duplicated across recoveries";
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(anchor->dups(), 0) << "an operation executed twice";
  EXPECT_GE(anchor->total(), successes);
  EXPECT_LE(anchor->total(), successes + failures);
  EXPECT_EQ(successes + failures, kOps);

  // The run really did what it claims: ≥20 recoveries (forced cycles plus
  // the chaos schedule), every one through the WAL replay path, and no
  // in-doubt transaction left pinning a log.
  EXPECT_GE(rt.metrics().CounterValue("recovery.count"), 20u);
  std::uint64_t replays = 0;
  for (core::Core* c : cores) {
    ASSERT_NE(c->wal(), nullptr);
    EXPECT_EQ(c->wal()->open_txns(), 0u) << c->name();
    replays += c->wal()->records_replayed();
  }
  EXPECT_GT(replays, 0u);
  EXPECT_GT(rt.metrics().CounterValue("session.replays") +
                rt.metrics().CounterValue("session.suppressed"),
            0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySoakTest,
                         ::testing::Values(3u, 17u, 2026u, 4096u, 31415u));

TEST(RecoverySoakDeterminismTest, SameSeedSameOutcome) {
  // Two identical seeded runs must agree exactly — recovery included.
  auto run = [](std::uint32_t seed) {
    RegisterTestComlets();
    core::Runtime rt;
    core::Core& a = rt.CreateCore("a");
    core::Core& b = rt.CreateCore("b");
    rt.network().SetDefaultLink(net::LinkModel{Millis(2), 1e7, true});
    a.EnableWal(Millis(200));
    b.EnableWal(Millis(200));
    net::FaultPlan plan;
    plan.seed = seed;
    plan.drop = 0.05;
    rt.network().SetFaultPlan(plan);
    auto ledger = a.New<OpLedger>();
    std::mt19937 rng(seed);
    for (int op = 0; op < 400; ++op) {
      if (op == 150) {
        a.Crash();
        rt.RunFor(Millis(40));
        a.Restart();
        rt.RunFor(Millis(500));
      }
      core::Core& from = rng() % 2 == 0 ? a : b;
      auto stub = from.RefTo<OpLedger>(ledger.handle());
      try {
        stub.Invoke<std::int64_t>("apply", static_cast<std::int64_t>(op));
      } catch (const FargoError&) {
      }
    }
    rt.network().ClearFaults();
    rt.RunUntilIdle();
    const auto* anchor = static_cast<const OpLedger*>(
        (a.repository().Get(ledger.target())
             ? a.repository().Get(ledger.target())
             : b.repository().Get(ledger.target()))
            .get());
    return std::tuple{anchor ? anchor->total() : -1,
                      anchor ? anchor->dups() : -1,
                      rt.scheduler().executed(),
                      rt.network().total_messages()};
  };
  const auto first = run(99u);
  const auto second = run(99u);
  EXPECT_EQ(first, second);
  EXPECT_EQ(std::get<1>(first), 0);
}

}  // namespace
}  // namespace fargo::testing
