// End-to-end observability acceptance: a chaos soak with tracing on must
// export a loadable Chrome-trace JSON file in which every retry and hop is
// causally reachable from its root span, and the metrics registry must
// report the headline numbers (latency buckets, chain hops, duplicate hits)
// the tracing actually observed. Also covers the operator surface: the
// shell's `trace on|off|dump` and `stats` commands and the text monitor's
// headline gauge line.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "src/shell/shell.h"
#include "tests/support/fixture.h"
#include "tests/support/json_lite.h"

namespace fargo::testing {
namespace {

class ObservabilityTest : public FargoTest {
 protected:
  /// Runs a seeded chaos workload with tracing enabled: invocations from
  /// random cores against a periodically relocating ledger, over a faulty
  /// network, then heals and drains to quiescence.
  void RunTracedChaosWorkload(std::uint32_t seed, int ops) {
    cores = MakeCores(4, Millis(2), 1e7);
    rt.SetTracing(true);

    core::RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff = Millis(20);
    policy.seed = seed;
    for (core::Core* c : cores) {
      c->SetRpcTimeout(Millis(200));
      c->SetRetryPolicy(policy);
    }
    net::FaultPlan plan;
    plan.seed = seed;
    plan.drop = 0.05;
    plan.duplicate = 0.02;
    plan.reorder = 0.10;
    plan.reorder_jitter = Millis(10);
    rt.network().SetFaultPlan(plan);

    auto ledger = cores[0]->New<OpLedger>();
    std::size_t model_at = 0;
    std::mt19937 rng(seed);
    for (int op = 0; op < ops; ++op) {
      if (op > 0 && op % 100 == 0) {
        const std::size_t dest = rng() % cores.size();
        const std::size_t from = rng() % cores.size();
        try {
          cores[from]->MoveId(ledger.target(), cores[dest]->id());
          model_at = dest;
        } catch (const FargoError&) {
          for (std::size_t c = 0; c < cores.size(); ++c)
            if (cores[c]->repository().Contains(ledger.target())) model_at = c;
        }
      }
      const std::size_t from = rng() % cores.size();
      auto stub = cores[from]->RefTo<OpLedger>(ledger.handle());
      try {
        stub.Invoke<std::int64_t>("apply", static_cast<std::int64_t>(op));
      } catch (const FargoError&) {
        for (std::size_t c = 0; c < cores.size(); ++c)
          if (cores[c]->repository().Contains(ledger.target())) model_at = c;
        cores[from]->trackers().SetForward(ledger.target(),
                                           cores[model_at]->id(),
                                           std::string(OpLedger::kTypeName));
      }
    }
    rt.network().ClearFaults();
    rt.RunUntilIdle();
  }

  std::vector<core::Core*> cores;
};

TEST_F(ObservabilityTest, ChaosTraceExportsLoadableChromeJson) {
  RunTracedChaosWorkload(/*seed=*/33, /*ops=*/500);

  std::ostringstream os;
  const std::size_t written = rt.WriteTrace(os);
  ASSERT_GT(written, 0u);

  // The export must parse as JSON and follow the trace-event format.
  auto doc = json::Parse(os.str());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->at("displayTimeUnit").string(), "ms");
  const auto& events = doc->at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::size_t metadata = 0, spans = 0;
  // span id -> (trace id, parent span id), for causal-chain walking.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> links;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> to_walk;  // span, trace
  for (const auto& ev : events.items) {
    ASSERT_TRUE(ev->is_object());
    const std::string& ph = ev->at("ph").string();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(ev->at("name").string(), "process_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++spans;
    EXPECT_GE(ev->at("dur").number(), 0.0);
    EXPECT_GE(ev->at("ts").number(), 0.0);
    const auto& args = ev->at("args");
    const std::uint64_t trace = args.at("trace").u64();
    const std::uint64_t span = args.at("span").u64();
    EXPECT_EQ(ev->at("tid").u64(), trace);
    EXPECT_NE(args.at("outcome").string(), "pending");
    links[span] = {trace, args.at("parent").u64()};
    const std::string& cat = ev->at("cat").string();
    if (cat == "retry" || cat == "hop") to_walk.emplace_back(span, trace);
  }
  EXPECT_EQ(metadata, cores.size());
  EXPECT_EQ(spans, written);

  // Acceptance: every retry and hop span is a (transitive) child of the
  // root span of its own trace.
  ASSERT_FALSE(to_walk.empty()) << "chaos produced no retries or hops";
  for (auto [span, trace] : to_walk) {
    std::uint64_t cur = span;
    int steps = 0;
    while (links.at(cur).second != 0) {
      cur = links.at(cur).second;
      ASSERT_TRUE(links.contains(cur))
          << "span " << span << " has a dangling ancestor " << cur;
      EXPECT_EQ(links.at(cur).first, trace)
          << "ancestor of span " << span << " jumped traces";
      ASSERT_LT(++steps, 64) << "parent cycle at span " << span;
    }
  }
}

TEST_F(ObservabilityTest, MetricsReportTheHeadlineNumbers) {
  RunTracedChaosWorkload(/*seed=*/71, /*ops=*/500);
  const monitor::Registry& reg = rt.metrics();

  // Invocation latency: every successful invoke observed a real latency.
  monitor::Histogram::Snapshot lat = reg.HistogramSnapshot("invoke.latency_ns");
  EXPECT_EQ(lat.count, reg.CounterValue("invoke.count"));
  EXPECT_GT(lat.count, 0u);
  std::uint64_t occupied = 0;
  for (std::uint64_t c : lat.counts) occupied += c > 0 ? 1 : 0;
  EXPECT_GT(occupied, 0u);
  EXPECT_GT(lat.sum, 0.0);  // a cross-core RPC cannot take zero time

  // Chain hops at delivery were recorded for the same invocations.
  EXPECT_EQ(reg.HistogramSnapshot("invoke.hops").count, lat.count);

  // The chaos machinery left its fingerprints, and the counters agree with
  // the per-core ground truth the runtime keeps independently.
  std::uint64_t retries = 0, replays = 0, suppressed = 0;
  for (core::Core* c : cores) {
    retries += c->rpc_retries();
    replays += c->replay().replays();
    suppressed += c->replay().suppressed();
  }
  EXPECT_GT(reg.CounterValue("rpc.retries"), 0u);
  EXPECT_EQ(reg.CounterValue("rpc.retries"), retries);
  EXPECT_EQ(reg.CounterValue("session.replays"), replays);
  EXPECT_EQ(reg.CounterValue("session.suppressed"), suppressed);
  EXPECT_GT(replays + suppressed, 0u) << "slot replay never fired under chaos";
  EXPECT_EQ(reg.CounterValue("net.drops"), rt.network().dropped());
  EXPECT_GT(reg.CounterValue("net.drops"), 0u);
  EXPECT_GT(reg.CounterValue("move.count"), 0u);
  EXPECT_GT(reg.HistogramSnapshot("move.duration_ns").count, 0u);
  EXPECT_GT(reg.HistogramSnapshot("move.bytes").sum, 0.0);

  // The flat dump renders all of it.
  std::ostringstream os;
  reg.Dump(os);
  const std::string dump = os.str();
  for (const char* name :
       {"counter invoke.count", "counter rpc.retries", "counter net.drops",
        "histogram invoke.latency_ns", "histogram invoke.hops",
        "histogram move.bytes"})
    EXPECT_NE(dump.find(name), std::string::npos) << name;
}

TEST_F(ObservabilityTest, PerCoreDumpWritesOnlyThatCoresSpans) {
  cores = MakeCores(2);
  rt.SetTracing(true);
  auto counter = cores[0]->New<Counter>();
  auto stub = cores[1]->RefTo<Counter>(counter.handle());
  stub.Invoke<std::int64_t>("increment");

  const std::string path = "observability_core_dump.json";
  const std::size_t n = cores[1]->DumpTrace(path);
  EXPECT_EQ(n, 1u);  // just the root span; the exec lives on core0
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = json::Parse(buf.str());
  std::size_t span_events = 0;
  for (const auto& ev : doc->at("traceEvents").items)
    if (ev->at("ph").string() == "X") {
      ++span_events;
      EXPECT_EQ(ev->at("pid").u64(), cores[1]->id().value);
      EXPECT_EQ(ev->at("cat").string(), "root");
    }
  EXPECT_EQ(span_events, n);
  std::remove(path.c_str());
}

TEST_F(ObservabilityTest, DumpTraceToUnwritablePathThrows) {
  cores = MakeCores(1);
  EXPECT_THROW(rt.DumpTrace("/nonexistent-dir/trace.json"), FargoError);
  EXPECT_THROW(cores[0]->DumpTrace("/nonexistent-dir/trace.json"), FargoError);
}

// ---- operator surface -------------------------------------------------------

class ObservabilityShellTest : public FargoTest {
 protected:
  ObservabilityShellTest() {
    cores = MakeCores(2);
    shell = std::make_unique<shell::Shell>(rt, *cores[0], out);
  }

  std::string Run(const std::string& line) {
    out.str("");
    shell->Execute(line);
    return out.str();
  }

  std::vector<core::Core*> cores;
  std::ostringstream out;
  std::unique_ptr<shell::Shell> shell;
};

TEST_F(ObservabilityShellTest, TraceOnOffTogglesRecording) {
  auto counter = cores[0]->New<Counter>();
  auto stub = cores[1]->RefTo<Counter>(counter.handle());

  stub.Invoke<std::int64_t>("increment");  // tracing off: nothing recorded
  EXPECT_EQ(cores[1]->tracer().buffer().size(), 0u);

  Run("trace on");
  EXPECT_TRUE(rt.tracing());
  stub.Invoke<std::int64_t>("increment");
  EXPECT_GT(cores[1]->tracer().buffer().size(), 0u);

  Run("trace off");
  const std::size_t before = cores[1]->tracer().buffer().size();
  stub.Invoke<std::int64_t>("increment");
  EXPECT_EQ(cores[1]->tracer().buffer().size(), before);
}

TEST_F(ObservabilityShellTest, TraceDumpWritesLoadableFile) {
  Run("trace on");
  auto counter = cores[0]->New<Counter>();
  auto stub = cores[1]->RefTo<Counter>(counter.handle());
  stub.Invoke<std::int64_t>("increment");

  const std::string path = "observability_shell_dump.json";
  const std::string msg = Run("trace dump " + path);
  EXPECT_NE(msg.find(path), std::string::npos);
  EXPECT_NE(msg.find("spans"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = json::Parse(buf.str());
  EXPECT_TRUE(doc->at("traceEvents").is_array());
  std::remove(path.c_str());
}

TEST_F(ObservabilityShellTest, StatsDumpsTheRegistry) {
  auto counter = cores[0]->New<Counter>();
  auto stub = cores[1]->RefTo<Counter>(counter.handle());
  stub.Invoke<std::int64_t>("increment");
  const std::string s = Run("stats");
  EXPECT_NE(s.find("counter invoke.count 1"), std::string::npos);
  EXPECT_NE(s.find("counter invoke.exec 1"), std::string::npos);
  EXPECT_NE(s.find("histogram invoke.latency_ns count=1"), std::string::npos);
}

TEST_F(ObservabilityShellTest, SnapshotLeadsWithHeadlineGauges) {
  auto counter = cores[0]->New<Counter>();
  auto stub = cores[1]->RefTo<Counter>(counter.handle());
  stub.Invoke<std::int64_t>("increment");
  cores[0]->MoveId(counter.target(), cores[1]->id());
  rt.RunUntilIdle();

  const std::string s = Run("snapshot");
  EXPECT_NE(s.find("invocations=1"), std::string::npos);
  EXPECT_NE(s.find("moves=1"), std::string::npos);
  EXPECT_NE(s.find("drops=0"), std::string::npos);
  EXPECT_NE(s.find("messages="), std::string::npos);
}

TEST_F(ObservabilityShellTest, HelpMentionsTheNewCommands) {
  const std::string s = Run("help");
  EXPECT_NE(s.find("trace"), std::string::npos);
  EXPECT_NE(s.find("stats"), std::string::npos);
}

}  // namespace
}  // namespace fargo::testing
