// End-to-end scenarios crossing every module: monitoring-driven relocation
// improving application latency, adaptation to WAN changes, and sustained
// operation under repeated reconfiguration.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

// Scenario scripts drive blocking rule commands and Worker.work-style
// nested synchronous invokes — sim-pinned (DESIGN.md §localities).
class ScenarioTest : public FargoSimTest {};

TEST_F(ScenarioTest, ColocationCutsRequestLatency) {
  // A worker separated from its data source by a slow WAN link; colocating
  // them removes the per-request round trip (the paper's §1 motivation).
  auto cores = MakeCores(2, Millis(40), 1.25e6);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[1]->New<Data>(std::size_t{1000});
  worker.Call("bind", {Value(data.handle())});

  auto measure = [&] {
    const SimTime t0 = rt.Now();
    worker.Call("work");
    return rt.Now() - t0;
  };
  const SimTime apart = measure();
  cores[0]->MoveId(worker.target(), cores[1]->id());
  // One request crosses to reach the worker, but work() itself is local.
  const SimTime together_first = measure();
  (void)together_first;
  // Use a client stub at core1 to see pure colocated cost.
  auto local_client = cores[1]->RefFromHandle(worker.handle());
  const SimTime t0 = rt.Now();
  local_client.Call("work");
  const SimTime together = rt.Now() - t0;

  EXPECT_GE(apart, 2 * Millis(40));  // at least one WAN round trip
  EXPECT_EQ(together, 0);            // fully local after relocation
}

TEST_F(ScenarioTest, MonitorDrivenAdaptationBeatsStaticLayout) {
  // Two identical worker/data apps. One is governed by a script rule that
  // colocates on invocation pressure; the other is static. As the app runs
  // over a slow link, the governed copy ends up faster.
  auto cores = MakeCores(3, Millis(20), 1.25e6);
  core::Core& admin = *cores[0];

  auto mk = [&](core::Core& wc, core::Core& dc) {
    auto w = wc.New<Worker>();
    auto d = dc.New<Data>(std::size_t{100});
    w.Call("bind", {Value(d.handle())});
    return w;
  };
  auto governed = mk(*cores[1], *cores[2]);
  auto static_w = mk(*cores[1], *cores[2]);

  script::Engine engine(rt, admin);
  engine.Run(
      "$c = %1\n"
      "on methodInvokeRate(3) from $c[0] to $c[1] every 0.5 do\n"
      "  move $c[0] to coreOf $c[1]\nend",
      {Value(Value::List{
          Value(governed.handle()),
          Value(ComletHandle{
              std::dynamic_pointer_cast<Worker>(
                  cores[1]->repository().Get(governed.target()))
                  ->data()
                  .handle()})})});

  // Clients observe both apps from the admin core: each request crosses to
  // the worker, which consults its data source. Colocating worker+data
  // removes the inner round trip; the client hop remains either way.
  auto governed_client = admin.RefFromHandle(governed.handle());
  auto static_client = admin.RefFromHandle(static_w.handle());
  SimTime governed_time = 0, static_time = 0;
  for (int i = 0; i < 50; ++i) {
    SimTime t0 = rt.Now();
    governed_client.Call("work");
    governed_time += rt.Now() - t0;
    t0 = rt.Now();
    static_client.Call("work");
    static_time += rt.Now() - t0;
    rt.RunFor(Millis(100));
  }
  // The governed worker was moved next to its data early on.
  EXPECT_TRUE(cores[2]->repository().Contains(governed.target()));
  EXPECT_TRUE(cores[1]->repository().Contains(static_w.target()));
  EXPECT_LT(governed_time, static_time * 7 / 10);
}

TEST_F(ScenarioTest, PullGroupStaysTogetherUnderRepeatedRelocation) {
  // A pipeline of pulled complets keeps functioning while an administrator
  // bounces it around the deployment.
  auto cores = MakeCores(4);
  auto head = cores[0]->New<Node>();
  auto mid = cores[0]->New<Node>();
  auto tail = cores[0]->New<Node>();
  head.Call("setTag", {Value(1)});
  mid.Call("setTag", {Value(2)});
  tail.Call("setTag", {Value(3)});
  head.Call("setNext", {Value(mid.handle()), Value("pull")});
  mid.Call("setNext", {Value(tail.handle()), Value("pull")});

  for (int round = 0; round < 8; ++round) {
    core::Core* dest = cores[static_cast<std::size_t>((round + 1) % 4)];
    cores[0]->MoveId(head.target(), dest->id());
    // The whole group lives at dest and sums correctly.
    EXPECT_TRUE(dest->repository().Contains(mid.target())) << round;
    EXPECT_TRUE(dest->repository().Contains(tail.target())) << round;
    EXPECT_EQ(head.Invoke<std::int64_t>("sum", std::int64_t{5}), 6) << round;
  }
}

TEST_F(ScenarioTest, StampAgentReconnectsToLocalDeviceEverywhere) {
  // The paper's printer example: a mobile complet with a stamp reference
  // reconnects to the local printer at every site it visits.
  auto cores = MakeCores(3);
  std::vector<core::ComletRef<Printer>> printers;
  for (core::Core* c : cores) printers.push_back(c->New<Printer>());

  auto agent = cores[0]->New<Node>();
  agent.Call("setNext", {Value(printers[0].handle()), Value("stamp")});

  for (int hop = 1; hop < 3; ++hop) {
    cores[static_cast<std::size_t>(hop - 1)]->MoveId(
        agent.target(), cores[static_cast<std::size_t>(hop)]->id());
    auto anchor = std::dynamic_pointer_cast<Node>(
        cores[static_cast<std::size_t>(hop)]->repository().Get(
            agent.target()));
    ASSERT_NE(anchor, nullptr);
    EXPECT_EQ(anchor->next().target(),
              printers[static_cast<std::size_t>(hop)].target());
  }
}

TEST_F(ScenarioTest, HeavyChurnManyCompletsManyMoves) {
  // Stress: 40 complets shuffled across 5 cores for 10 rounds, with
  // invocations interleaved; everything stays reachable and consistent.
  auto cores = MakeCores(5, Millis(2), 1e7);
  std::vector<core::ComletRef<Counter>> counters;
  for (int i = 0; i < 40; ++i)
    counters.push_back(
        cores[static_cast<std::size_t>(i % 5)]->New<Counter>());

  std::uint64_t expected = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 40; ++i) {
      auto& ref = counters[static_cast<std::size_t>(i)];
      core::Core* dest = cores[static_cast<std::size_t>((i + round) % 5)];
      ref.source_core()->MoveId(ref.target(), dest->id());
      ref.Call("increment");
      ++expected;
    }
  }
  std::uint64_t total = 0;
  for (auto& ref : counters)
    total += static_cast<std::uint64_t>(ref.Invoke<std::int64_t>("get"));
  EXPECT_EQ(total, expected);
}

TEST_F(ScenarioTest, ClosureWithSharedStructureMovesIntact) {
  // A complet whose closure has aliasing and an embedded complet reference
  // keeps both across movement.
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  auto holder = cores[0]->New<Holder>();
  {
    auto anchor = std::dynamic_pointer_cast<Holder>(
        cores[0]->repository().Get(holder.target()));
    auto shared = std::make_shared<TreeNode>();
    shared->value = 9;
    shared->counter = counter;
    anchor->root = std::make_shared<TreeNode>();
    anchor->root->value = 1;
    anchor->root->counter = counter;  // embedded complet reference
    anchor->root->left = shared;
    anchor->root->right = shared;
  }
  EXPECT_TRUE(holder.Invoke<bool>("sharedChildren"));
  cores[0]->Move(holder, cores[1]->id());
  EXPECT_TRUE(holder.Invoke<bool>("sharedChildren"));
  EXPECT_EQ(holder.Invoke<std::int64_t>("bump"), 1);
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);  // original complet
}

TEST_F(ScenarioTest, LoadBalancingViaThresholdEvents) {
  // completLoad above threshold at a core triggers spreading complets to
  // the least-loaded core (API-level relocation programming, §4).
  auto cores = MakeCores(3);
  core::Core& admin = *cores[0];
  admin.ListenThresholdAt(
      cores[1]->id(), monitor::ComletLoadProbe(), 6.0,
      monitor::Trigger::kAbove, Millis(50), [&](const monitor::Event&) {
        core::Core* busy = rt.Find(cores[1]->id());
        std::vector<ComletId> here = busy->ComletsHere();
        // Move half of the complets away.
        for (std::size_t i = 0; i < here.size() / 2; ++i)
          busy->MoveId(here[i], cores[2]->id());
      });
  for (int i = 0; i < 10; ++i) cores[1]->New<Message>("m");
  rt.RunFor(Seconds(1));
  EXPECT_LE(cores[1]->repository().size(), 5u);
  EXPECT_GE(cores[2]->repository().size(), 5u);
}

}  // namespace
}  // namespace fargo::testing
