// Randomized soak test: a seeded stream of operations (instantiate, move,
// invoke, retype, rebalance, partition/heal) runs against the runtime while
// a shadow model tracks expected counter values and locations. Any
// divergence — lost invocation, wrong location, broken reference — fails.
#include <gtest/gtest.h>

#include <optional>
#include <random>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

// Re-resolves a complet from ground truth. A move is an asynchronous state
// machine: when a move command fails at the origin, the executor-side move
// may still be in flight — departed from the source repository, not yet
// installed at the destination, rollback pending. Pump in bounded slices
// until the complet surfaces somewhere; it always does, because an
// unsettled move either commits (install at dest) or rolls back (reinstall
// at source) within the executor's own RPC timeout.
std::optional<std::size_t> FindHost(core::Runtime& rt,
                                    const std::vector<core::Core*>& cores,
                                    ComletId id) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    for (std::size_t c = 0; c < cores.size(); ++c)
      if (cores[c]->repository().Contains(id)) return c;
    rt.RunFor(Millis(20));
  }
  return std::nullopt;
}

class SoakTest : public FargoTest,
                 public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(SoakTest, RandomOperationStreamStaysConsistent) {
  std::mt19937 rng(GetParam());
  const int kCores = 5;
  auto cores = MakeCores(kCores, Millis(2), 1e7);
  const bool use_home = GetParam() % 2 == 0;
  rt.EnableHomeRegistry(use_home);

  struct Entry {
    core::ComletRef<Counter> ref;
    std::int64_t expected = 0;
    std::size_t at = 0;  // model location (core index)
  };
  std::vector<Entry> complets;

  auto random_core = [&] { return rng() % kCores; };

  for (int op = 0; op < 600; ++op) {
    const int kind = static_cast<int>(rng() % 100);
    if (kind < 10 || complets.empty()) {
      // Instantiate at a random core (sometimes remotely).
      std::size_t at = random_core();
      std::size_t from = random_core();
      Entry e;
      e.ref = cores[from]->NewAt<Counter>(cores[at]->id());
      e.at = at;
      complets.push_back(std::move(e));
    } else if (kind < 40) {
      // Move a random complet to a random core, commanded from anywhere.
      Entry& e = complets[rng() % complets.size()];
      std::size_t dest = random_core();
      std::size_t from = random_core();
      cores[from]->RefFromHandle(e.ref.handle());  // extra stub churn
      try {
        cores[from]->MoveId(e.ref.target(), cores[dest]->id());
        e.at = dest;
      } catch (const UnreachableError&) {
        // Stale route with no naming help: re-resolve from the ground
        // truth (what an external naming service would provide).
        auto found = FindHost(rt, cores, e.ref.target());
        ASSERT_TRUE(found.has_value()) << "complet vanished at op " << op;
        e.at = *found;
      }
    } else if (kind < 85) {
      // Invoke from a random core through a fresh or existing stub.
      // Transport failures are retry-safe by contract (never executed):
      // re-route from ground truth and retry, keeping the model exact.
      Entry& e = complets[rng() % complets.size()];
      std::size_t from = random_core();
      auto stub = cores[from]->RefTo<Counter>(e.ref.handle());
      const std::int64_t inc = static_cast<std::int64_t>(rng() % 5);
      std::int64_t got;
      try {
        got = stub.Invoke<std::int64_t>("increment", inc);
      } catch (const UnreachableError&) {
        cores[from]->trackers().SetForward(e.ref.target(),
                                           cores[e.at]->id(), "test.Counter");
        got = stub.Invoke<std::int64_t>("increment", inc);
      }
      e.expected += inc;
      EXPECT_EQ(got, e.expected) << "op " << op;
    } else if (kind < 92) {
      // Verify location via ping (also shortens chains).
      Entry& e = complets[rng() % complets.size()];
      std::size_t from = random_core();
      auto stub = cores[from]->RefFromHandle(e.ref.handle());
      try {
        EXPECT_EQ(cores[from]->ResolveLocation(stub), cores[e.at]->id())
            << "op " << op;
      } catch (const UnreachableError&) {
        cores[from]->trackers().SetForward(e.ref.target(),
                                           cores[e.at]->id(), "test.Counter");
        EXPECT_EQ(cores[from]->ResolveLocation(stub), cores[e.at]->id());
      }
    } else if (kind < 96) {
      // Tracker GC at a random core must never break anything.
      cores[random_core()]->trackers().CollectGarbage();
    } else {
      // Drain background work.
      rt.RunFor(Millis(50));
    }
  }
  rt.RunUntilIdle();

  // Final audit: every complet is where the model says, with the right
  // value, reachable from every core (re-routing stale stubs via ground
  // truth where chains were GC'd away).
  for (Entry& e : complets) {
    EXPECT_TRUE(cores[e.at]->repository().Contains(e.ref.target()));
    for (int c = 0; c < kCores; ++c) {
      auto stub = cores[static_cast<std::size_t>(c)]->RefTo<Counter>(
          e.ref.handle());
      std::int64_t got;
      try {
        got = stub.Invoke<std::int64_t>("get");
      } catch (const UnreachableError&) {
        cores[static_cast<std::size_t>(c)]->trackers().SetForward(
            e.ref.target(), cores[e.at]->id(), "test.Counter");
        got = stub.Invoke<std::int64_t>("get");
      }
      EXPECT_EQ(got, e.expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u, 909u, 1010u));

class PartitionSoakTest : public FargoTest,
                          public ::testing::WithParamInterface<std::uint32_t> {
};

TEST_P(PartitionSoakTest, FlappingLinksNeverCorruptState) {
  // Like the soak above, but links flap; operations may fail with
  // UnreachableError — the invariant is that *observed successes* match
  // the model and nothing is double-applied on the failure path we can
  // verify (move rollbacks).
  std::mt19937 rng(GetParam());
  const int kCores = 4;
  auto cores = MakeCores(kCores, Millis(2), 1e7);
  // Half the seeds run with the home registry, which adds the
  // retry-via-home path to the chaos.
  rt.EnableHomeRegistry(GetParam() % 2 == 1);
  for (core::Core* c : cores) c->SetRpcTimeout(Millis(80));

  auto counter = cores[0]->New<Counter>();
  std::int64_t lower_bound = 0;  // successes (replies seen)
  std::size_t model_at = 0;

  for (int op = 0; op < 300; ++op) {
    // Random link flap.
    if (rng() % 5 == 0) {
      std::size_t a = rng() % kCores, b = rng() % kCores;
      if (a != b)
        rt.network().SetPartitioned(cores[a]->id(), cores[b]->id(),
                                    rng() % 2 == 0);
    }
    const std::size_t from = rng() % kCores;
    if (rng() % 3 == 0) {
      const std::size_t dest = rng() % kCores;
      try {
        cores[from]->MoveId(counter.target(), cores[dest]->id());
        model_at = dest;
      } catch (const FargoError&) {
        // Rolled back or unreachable: the complet is at model_at or dest.
        // Re-resolve below before trusting the model again.
        auto found = FindHost(rt, cores, counter.target());
        ASSERT_TRUE(found.has_value()) << "complet vanished at op " << op;
        model_at = *found;
      }
    } else {
      try {
        auto stub = cores[from]->RefTo<Counter>(counter.handle());
        stub.Invoke<std::int64_t>("increment");
        ++lower_bound;
      } catch (const FargoError&) {
        // Lost request or reply; an unseen increment may still have landed.
      }
    }
  }

  // Heal everything and audit.
  for (int a = 0; a < kCores; ++a)
    for (int b = a + 1; b < kCores; ++b)
      rt.network().SetPartitioned(cores[static_cast<std::size_t>(a)]->id(),
                                  cores[static_cast<std::size_t>(b)]->id(),
                                  false);
  rt.RunUntilIdle();
  EXPECT_TRUE(cores[model_at]->repository().Contains(counter.target()));
  auto stub = cores[model_at]->RefTo<Counter>(
      ComletHandle{counter.target(), cores[model_at]->id(), "test.Counter"});
  EXPECT_GE(stub.Invoke<std::int64_t>("get"), lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSoakTest,
                         ::testing::Values(7u, 13u, 29u, 31u, 64u, 65u));

// ---- Chaos soak -------------------------------------------------------------
//
// 10,000 invocations against a moving OpLedger while the chaos engine
// drops, duplicates and reorders messages. The at-most-once machinery
// (retry with session-key reuse + executor slot replay) must deliver zero double
// executions — the ledger records every op id it has ever applied (the
// record travels on moves), so any re-execution is caught exactly.

struct ChaosOutcome {
  std::int64_t applied_ops = 0;   // distinct op ids the ledger executed
  std::int64_t dups = 0;          // re-executions (MUST be zero)
  std::int64_t total = 0;         // ledger sum (1 per applied op)
  int successes = 0;              // invocations whose reply we saw
  int failures = 0;               // invocations that exhausted retries
  std::uint64_t messages = 0;     // network trace fingerprint...
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t events = 0;       // ...and scheduler trace fingerprint
  std::uint64_t retries = 0;
  std::uint64_t replays = 0;
  // Metrics-registry view of the same run (tentpole cross-check): these
  // must mirror the per-core ground truth exactly, and the exec counter is
  // the double-execution detector — every execution the runtime performed,
  // as counted at the dispatch site.
  std::uint64_t metric_invocations = 0;  // invoke.count (successes)
  std::uint64_t metric_execs = 0;        // invoke.exec (actual executions)
  std::uint64_t metric_retries = 0;      // rpc.retries
  std::uint64_t metric_replays = 0;      // session.replays
  std::uint64_t metric_suppressed = 0;   // session.suppressed

  bool operator==(const ChaosOutcome&) const = default;
};

ChaosOutcome RunChaosWorld(std::uint32_t seed, int ops) {
  RegisterTestComlets();
  core::Runtime rt;
  const int kCores = 4;
  std::vector<core::Core*> cores;
  for (int i = 0; i < kCores; ++i)
    cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
  rt.network().SetDefaultLink(net::LinkModel{Millis(2), 1e7, true});

  core::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = Millis(20);
  policy.seed = seed;
  for (core::Core* c : cores) {
    c->SetRpcTimeout(Millis(200));
    c->SetRetryPolicy(policy);
  }

  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.05;
  plan.duplicate = 0.02;
  plan.reorder = 0.10;
  plan.reorder_jitter = Millis(10);
  rt.network().SetFaultPlan(plan);

  auto ledger = cores[0]->New<OpLedger>();
  std::size_t model_at = 0;

  ChaosOutcome out;
  std::mt19937 rng(seed);
  for (int op = 0; op < ops; ++op) {
    if (op > 0 && op % 500 == 0) {
      // Periodic re-layout: the ledger keeps moving while requests are in
      // flight, exercising parking, forwarding and slot replay across hosts.
      const std::size_t dest = rng() % kCores;
      const std::size_t from = rng() % kCores;
      try {
        cores[from]->MoveId(ledger.target(), cores[dest]->id());
        model_at = dest;
      } catch (const FargoError&) {
        for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
          if (cores[c]->repository().Contains(ledger.target())) model_at = c;
      }
    }
    const std::size_t from = rng() % kCores;
    auto stub = cores[from]->RefTo<OpLedger>(ledger.handle());
    try {
      stub.Invoke<std::int64_t>("apply", static_cast<std::int64_t>(op));
      ++out.successes;
    } catch (const FargoError&) {
      // Retries exhausted. The op may or may not have executed (the
      // fundamental at-least-once ambiguity when replies keep vanishing) —
      // but it must never have executed TWICE, which the final audit checks.
      ++out.failures;
      for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
        if (cores[c]->repository().Contains(ledger.target())) model_at = c;
      cores[from]->trackers().SetForward(ledger.target(),
                                         cores[model_at]->id(),
                                         std::string(OpLedger::kTypeName));
    }
  }

  // Heal the network and drain stragglers (late retries, parked requests).
  rt.network().ClearFaults();
  rt.RunUntilIdle();

  // Audit from ground truth, not through the (possibly stale) stubs.
  const OpLedger* anchor = nullptr;
  for (core::Core* c : cores) {
    if (auto a = c->repository().Get(ledger.target())) {
      anchor = static_cast<const OpLedger*>(a.get());
      break;
    }
  }
  EXPECT_NE(anchor, nullptr) << "ledger vanished";
  if (anchor != nullptr) {
    out.total = anchor->total();
    out.dups = anchor->dups();
    // seen_ size == total when every apply incremented by 1 and none ran
    // twice; read it through the executed-op count for the fingerprint.
    out.applied_ops = anchor->total();
  }
  out.messages = rt.network().total_messages();
  out.drops = rt.network().dropped();
  out.duplicates = rt.network().duplicates();
  out.events = rt.scheduler().executed();
  std::uint64_t suppressed = 0;
  for (core::Core* c : cores) {
    out.retries += c->rpc_retries();
    out.replays += c->replay().replays();
    suppressed += c->replay().suppressed();
  }
  const monitor::Registry& reg = rt.metrics();
  out.metric_invocations = reg.CounterValue("invoke.count");
  out.metric_execs = reg.CounterValue("invoke.exec");
  out.metric_retries = reg.CounterValue("rpc.retries");
  out.metric_replays = reg.CounterValue("session.replays");
  out.metric_suppressed = reg.CounterValue("session.suppressed");
  // The registry is a second, independent accounting of the same run; any
  // divergence from the runtime's own counters is a wiring bug.
  EXPECT_EQ(out.metric_retries, out.retries);
  EXPECT_EQ(out.metric_replays, out.replays);
  EXPECT_EQ(out.metric_suppressed, suppressed);
  EXPECT_EQ(reg.CounterValue("net.drops"), rt.network().dropped());
  // invoke.count tallies every successful invocation — the applies above
  // plus any routed move commands, which travel as invocations of the
  // system move method (at most one per periodic re-layout).
  EXPECT_GE(out.metric_invocations, static_cast<std::uint64_t>(out.successes));
  EXPECT_LE(out.metric_invocations,
            static_cast<std::uint64_t>(out.successes) +
                static_cast<std::uint64_t>(ops / 500));
  return out;
}

class ChaosSoakTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChaosSoakTest, TenThousandInvocationsNeverDoubleExecute) {
  const ChaosOutcome out = RunChaosWorld(GetParam(), 10000);

  EXPECT_EQ(out.dups, 0) << "an operation executed twice";
  // Every observed success definitely executed; failures are ambiguous
  // (executed-but-reply-lost at worst once each).
  EXPECT_GE(out.total, out.successes);
  EXPECT_LE(out.total, out.successes + out.failures);
  EXPECT_EQ(out.successes + out.failures, 10000);
  // The fault plan really was active, and retries really did the saving.
  EXPECT_GT(out.drops, 0u);
  EXPECT_GT(out.duplicates, 0u);
  EXPECT_GT(out.retries, 0u);
  // Zero double-executions, cross-checked through the metrics layer: the
  // dispatch-site exec counter must account for every ledger execution,
  // exceeding it only by the handful of move-command executions. A move
  // whose reply is lost may legitimately execute at TWO hosts — the first
  // executor moves the ledger away, the retry is forwarded to the new host
  // whose replay window has no record of the slot, and it runs a benign
  // no-op move there — so allow up to two per periodic re-layout. Ledger
  // applies can never do this: out.dups is the exact detector for those,
  // and the duplicate-hit counters below must show the at-most-once
  // machinery actually absorbing the duplicate deliveries.
  EXPECT_GE(out.metric_execs, static_cast<std::uint64_t>(out.applied_ops));
  EXPECT_LE(out.metric_execs,
            static_cast<std::uint64_t>(out.applied_ops) + 2 * (10000 / 500));
  EXPECT_GT(out.metric_replays + out.metric_suppressed, 0u)
      << "chaos produced duplicates but slot replay never fired";
}

TEST(ChaosSoakDeterminismTest, SameSeedSameTrace) {
  // Two full runs from the same seed must produce identical traces — same
  // ledger state, same message counts, same scheduler event count.
  const ChaosOutcome first = RunChaosWorld(4242u, 2000);
  const ChaosOutcome second = RunChaosWorld(4242u, 2000);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.dups, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest,
                         ::testing::Values(11u, 23u, 47u));

}  // namespace
}  // namespace fargo::testing
