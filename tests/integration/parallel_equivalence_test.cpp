// Sim-vs-parallel equivalence gate (the CI cross-check, ISSUE: ci).
//
// The same seeded workloads run once under the deterministic sim
// (localities = 0) and once per parallel configuration (FARGO_PARALLEL-style
// worker counts), and the *observable* outcomes are diffed: OpLedger
// contents, the invoke.exec double-execution detector, and the at-most-once
// dedup counters. Internal event interleavings may differ between engines —
// what must not differ is what the application can see (PROTOCOL.md: mode
// invariance).
//
// Nightly knobs (soak.yml): FARGO_SOAK_SEEDS=s1,s2,... widens the seed
// sweep and FARGO_SOAK_OPS=N deepens each run; unset, the test stays CI-fast.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

std::vector<std::uint32_t> SweepSeeds() {
  std::vector<std::uint32_t> seeds;
  if (const char* env = std::getenv("FARGO_SOAK_SEEDS")) {
    std::stringstream ss(env);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (!tok.empty())
        seeds.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
  }
  if (seeds.empty()) seeds = {11u, 23u};
  return seeds;
}

int SweepOps() {
  if (const char* env = std::getenv("FARGO_SOAK_OPS"))
    return std::max(1, std::atoi(env));
  return 1500;
}

/// What the application (and the ops plane) can observe of a run. Any
/// field differing between engines is an equivalence break.
struct Observable {
  std::int64_t ledger_total = 0;  ///< distinct ops the ledger applied
  std::int64_t ledger_dups = 0;   ///< re-executions — MUST be zero anywhere
  int successes = 0;              ///< invocations whose reply arrived
  int failures = 0;               ///< invocations that exhausted retries
  std::size_t final_host = 0;     ///< where the ledger ended up

  bool operator==(const Observable&) const = default;
};

std::ostream& operator<<(std::ostream& os, const Observable& o) {
  return os << "{total=" << o.ledger_total << " dups=" << o.ledger_dups
            << " ok=" << o.successes << " fail=" << o.failures
            << " host=" << o.final_host << "}";
}

/// Exactly-once bookkeeping that must *hold* in every mode (bounds, not
/// equality: retry timing under real threads may differ, so the counter
/// values themselves are mode-dependent — the invariants are not).
struct Bookkeeping {
  std::uint64_t execs = 0;       ///< invoke.exec at the dispatch sites
  std::uint64_t replays = 0;     ///< cached-reply hits
  std::uint64_t suppressed = 0;  ///< in-progress duplicate drops
};

/// The chaos soak workload from soak_test, parameterized by engine: a
/// moving OpLedger under drops/duplicates/reordering. `localities` = 0
/// runs the deterministic sim; N runs the locality engine.
void RunChaosWorkload(int localities, std::uint32_t seed, int ops,
                      Observable& obs, Bookkeeping& books) {
  RegisterTestComlets();
  core::Runtime rt(core::RuntimeOptions{localities});
  const int kCores = 4;
  std::vector<core::Core*> cores;
  for (int i = 0; i < kCores; ++i)
    cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
  rt.network().SetDefaultLink(net::LinkModel{Millis(2), 1e7, true});

  core::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = Millis(20);
  policy.seed = seed;
  for (core::Core* c : cores) {
    c->SetRpcTimeout(Millis(200));
    c->SetRetryPolicy(policy);
  }

  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.05;
  plan.duplicate = 0.02;
  plan.reorder = 0.10;
  plan.reorder_jitter = Millis(10);
  rt.network().SetFaultPlan(plan);

  auto ledger = cores[0]->New<OpLedger>();
  std::size_t model_at = 0;

  std::mt19937 rng(seed);
  for (int op = 0; op < ops; ++op) {
    if (op > 0 && op % 500 == 0) {
      const std::size_t dest = rng() % kCores;
      const std::size_t from = rng() % kCores;
      try {
        cores[from]->MoveId(ledger.target(), cores[dest]->id());
        model_at = dest;
      } catch (const FargoError&) {
        for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
          if (cores[c]->repository().Contains(ledger.target())) model_at = c;
      }
    }
    const std::size_t from = rng() % kCores;
    auto stub = cores[from]->RefTo<OpLedger>(ledger.handle());
    try {
      stub.Invoke<std::int64_t>("apply", static_cast<std::int64_t>(op));
      ++obs.successes;
    } catch (const FargoError&) {
      ++obs.failures;
      for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
        if (cores[c]->repository().Contains(ledger.target())) model_at = c;
      cores[from]->trackers().SetForward(ledger.target(),
                                         cores[model_at]->id(),
                                         std::string(OpLedger::kTypeName));
    }
  }

  rt.network().ClearFaults();
  rt.RunUntilIdle();

  const OpLedger* anchor = nullptr;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    if (auto a = cores[c]->repository().Get(ledger.target())) {
      anchor = static_cast<const OpLedger*>(a.get());
      obs.final_host = c;
      break;
    }
  }
  ASSERT_NE(anchor, nullptr) << "ledger vanished (localities="
                             << localities << " seed=" << seed << ")";
  obs.ledger_total = anchor->total();
  obs.ledger_dups = anchor->dups();
  const monitor::Registry& reg = rt.metrics();
  books.execs = reg.CounterValue("invoke.exec");
  books.replays = reg.CounterValue("session.replays");
  books.suppressed = reg.CounterValue("session.suppressed");
}

/// The recovery-style workload: a durable (WAL-backed) ledger survives
/// crash/restart churn while invocations and moves keep coming. Exercises
/// movement-during-handoff: the conductor fires a move and keeps invoking
/// through stale stubs while the stream is in flight.
void RunRecoveryWorkload(int localities, std::uint32_t seed, int ops,
                         Observable& obs, Bookkeeping& books) {
  RegisterTestComlets();
  core::Runtime rt(core::RuntimeOptions{localities});
  const int kCores = 3;
  std::vector<core::Core*> cores;
  for (int i = 0; i < kCores; ++i) {
    core::Core& c = rt.CreateCore("core" + std::to_string(i));
    c.EnableWal();
    cores.push_back(&c);
  }
  rt.network().SetDefaultLink(net::LinkModel{Millis(2), 1e7, true});
  for (core::Core* c : cores) c->SetRpcTimeout(Millis(200));

  auto ledger = cores[0]->New<OpLedger>();
  std::size_t model_at = 0;

  std::mt19937 rng(seed);
  for (int op = 0; op < ops; ++op) {
    if (op > 0 && op % 200 == 0) {
      // Crash a non-hosting core and bring it straight back: its sessions
      // replay from the WAL and parked work must not double-execute.
      std::size_t victim = rng() % kCores;
      if (victim == model_at) victim = (victim + 1) % kCores;
      cores[victim]->Crash();
      cores[victim]->Restart();
    }
    if (op > 0 && op % 150 == 0) {
      const std::size_t dest = rng() % kCores;
      try {
        cores[model_at]->MoveId(ledger.target(), cores[dest]->id());
        model_at = dest;
      } catch (const FargoError&) {
        for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
          if (cores[c]->repository().Contains(ledger.target())) model_at = c;
      }
    }
    const std::size_t from = rng() % kCores;
    auto stub = cores[from]->RefTo<OpLedger>(ledger.handle());
    try {
      stub.Invoke<std::int64_t>("apply", static_cast<std::int64_t>(op));
      ++obs.successes;
    } catch (const FargoError&) {
      ++obs.failures;
      for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
        if (cores[c]->repository().Contains(ledger.target())) model_at = c;
      cores[from]->trackers().SetForward(ledger.target(),
                                         cores[model_at]->id(),
                                         std::string(OpLedger::kTypeName));
    }
  }
  rt.RunUntilIdle();

  const OpLedger* anchor = nullptr;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    if (auto a = cores[c]->repository().Get(ledger.target())) {
      anchor = static_cast<const OpLedger*>(a.get());
      obs.final_host = c;
      break;
    }
  }
  ASSERT_NE(anchor, nullptr) << "ledger vanished (localities="
                             << localities << " seed=" << seed << ")";
  obs.ledger_total = anchor->total();
  obs.ledger_dups = anchor->dups();
  const monitor::Registry& reg = rt.metrics();
  books.execs = reg.CounterValue("invoke.exec");
  books.replays = reg.CounterValue("session.replays");
  books.suppressed = reg.CounterValue("session.suppressed");
}

using WorkloadFn = void (*)(int, std::uint32_t, int, Observable&,
                            Bookkeeping&);

void CheckEquivalence(WorkloadFn workload, const char* name) {
  const std::vector<int> kParallelConfigs = {2, 4};
  for (std::uint32_t seed : SweepSeeds()) {
    Observable sim_obs;
    Bookkeeping sim_books;
    ASSERT_NO_FATAL_FAILURE(
        workload(/*localities=*/0, seed, SweepOps(), sim_obs, sim_books));
    EXPECT_EQ(sim_obs.ledger_dups, 0)
        << name << " seed " << seed << ": sim double-executed";
    // The dispatch-site exec counter can exceed distinct applies only by
    // the ambiguous tail: failed invocations that executed but lost their
    // reply, plus re-routed move commands (bounded by the move count; see
    // soak_test for the two-host move case).
    const auto exec_ceiling = [&](const Observable& o) {
      return static_cast<std::uint64_t>(o.ledger_total) +
             static_cast<std::uint64_t>(o.failures) +
             2 * (static_cast<std::uint64_t>(SweepOps()) / 150 + 1);
    };
    EXPECT_GE(sim_books.execs, static_cast<std::uint64_t>(sim_obs.ledger_total));
    EXPECT_LE(sim_books.execs, exec_ceiling(sim_obs));

    for (int n : kParallelConfigs) {
      Observable par_obs;
      Bookkeeping par_books;
      ASSERT_NO_FATAL_FAILURE(
          workload(n, seed, SweepOps(), par_obs, par_books));
      // The headline gate: what the application observed must be
      // IDENTICAL between the deterministic sim and every worker count.
      EXPECT_EQ(par_obs, sim_obs)
          << name << " seed " << seed << ": FARGO_PARALLEL=" << n
          << " diverged from sim — parallel " << par_obs << " vs sim "
          << sim_obs;
      EXPECT_EQ(par_obs.ledger_dups, 0)
          << name << " seed " << seed << ": FARGO_PARALLEL=" << n
          << " double-executed";
      EXPECT_GE(par_books.execs,
                static_cast<std::uint64_t>(par_obs.ledger_total));
      EXPECT_LE(par_books.execs, exec_ceiling(par_obs));
    }
  }
}

TEST(ParallelEquivalenceTest, ChaosSoakMatchesSim) {
  CheckEquivalence(&RunChaosWorkload, "chaos");
}

TEST(ParallelEquivalenceTest, RecoverySoakMatchesSim) {
  CheckEquivalence(&RunRecoveryWorkload, "recovery");
}

TEST(ParallelEquivalenceTest, ParallelRunsAreDeterministicForFixedN) {
  // Same seed, same N → identical observables run-to-run (the engine's
  // sorted-inbox merge makes execution a pure function of the workload).
  Observable a, b;
  Bookkeeping ba, bb;
  ASSERT_NO_FATAL_FAILURE(RunChaosWorkload(2, 4242u, 1000, a, ba));
  ASSERT_NO_FATAL_FAILURE(RunChaosWorkload(2, 4242u, 1000, b, bb));
  EXPECT_EQ(a, b);
  EXPECT_EQ(ba.execs, bb.execs);
  EXPECT_EQ(ba.replays, bb.replays);
  EXPECT_EQ(ba.suppressed, bb.suppressed);
}

TEST(ParallelEquivalenceTest, MovementDuringHandoffKeepsExactlyOnce) {
  // Async invocations are launched and left in flight while the target
  // moves between localities; every reply must arrive exactly once, and
  // the ledger must see each op exactly once, in both engines.
  auto run = [](int localities) {
    RegisterTestComlets();
    core::Runtime rt(core::RuntimeOptions{localities});
    std::vector<core::Core*> cores;
    for (int i = 0; i < 4; ++i)
      cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
    rt.network().SetDefaultLink(net::LinkModel{Millis(5), 1e7, true});

    auto ledger = cores[0]->New<OpLedger>();
    // Settle continuations run on worker threads in parallel mode; the
    // reply tally is the one piece of test state they share.
    std::atomic<int> replies{0};
    for (int wave = 0; wave < 8; ++wave) {
      // A burst of async applies from every core...
      for (int i = 0; i < 8; ++i) {
        const std::size_t from = static_cast<std::size_t>(i) % cores.size();
        cores[from]
            ->RefTo<OpLedger>(ledger.handle())
            .InvokeAsync<std::int64_t>("apply",
                                       static_cast<std::int64_t>(wave * 8 + i))
            .OnSettle([&replies](sim::Future<std::int64_t> f) {
              if (f.ok()) replies.fetch_add(1, std::memory_order_relaxed);
            });
      }
      // ...and a move racing them (different locality each wave).
      cores[0]->MoveId(ledger.target(),
                       cores[static_cast<std::size_t>(wave) % 4]->id());
    }
    rt.RunUntilIdle();
    const OpLedger* anchor = nullptr;
    for (core::Core* c : cores)
      if (auto a = c->repository().Get(ledger.target()))
        anchor = static_cast<const OpLedger*>(a.get());
    struct Result {
      std::int64_t total, dups;
      int replies;
      bool operator==(const Result&) const = default;
    };
    EXPECT_NE(anchor, nullptr);
    if (anchor == nullptr) return Result{-1, -1, replies.load()};
    return Result{anchor->total(), anchor->dups(), replies.load()};
  };
  const auto sim = run(0);
  EXPECT_EQ(sim.total, 64);
  EXPECT_EQ(sim.dups, 0);
  EXPECT_EQ(sim.replies, 64);
  for (int n : {2, 4}) {
    const auto par = run(n);
    EXPECT_EQ(par, sim) << "FARGO_PARALLEL=" << n;
  }
}

}  // namespace
}  // namespace fargo::testing
