// Protocol-level assertions via the network tap: exact message sequences
// for invocation, chain shortening, and movement — the §3 wire behaviour,
// verified message by message.
#include <gtest/gtest.h>

#include "src/core/wire.h"
#include "src/net/formation.h"
#include "src/serial/frame.h"
#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using net::MessageKind;

class ProtocolTest : public FargoTest {
 protected:
  /// Starts recording (kind, from, to) triples. Formation frames (kBatch)
  /// are unwrapped into their constituent messages: these tests assert the
  /// logical protocol shape, which batching must carry unchanged.
  void Record() {
    log.clear();
    rt.network().SetTap([this](const net::Message& m) {
      if (m.kind == MessageKind::kBatch) {
        serial::FrameReader frame(m.payload);
        while (frame.HasNext()) {
          serial::Reader item = frame.Next();
          log.push_back({net::ReadBatchItem(item).kind, m.from, m.to});
        }
        return;
      }
      log.push_back({m.kind, m.from, m.to});
    });
  }
  struct Entry {
    MessageKind kind;
    CoreId from, to;
  };
  std::size_t CountKind(MessageKind k) const {
    std::size_t n = 0;
    for (const Entry& e : log)
      if (e.kind == k) ++n;
    return n;
  }
  std::vector<Entry> log;
};

TEST_F(ProtocolTest, SimpleRemoteInvocationIsRequestPlusReply) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  auto remote = cores[1]->RefTo<Message>(msg.handle());
  Record();
  remote.Call("text");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, MessageKind::kInvokeRequest);
  EXPECT_EQ(log[0].from, cores[1]->id());
  EXPECT_EQ(log[0].to, cores[0]->id());
  EXPECT_EQ(log[1].kind, MessageKind::kInvokeReply);
  EXPECT_EQ(log[1].from, cores[0]->id());
  EXPECT_EQ(log[1].to, cores[1]->id());
}

TEST_F(ProtocolTest, ChainWalkSendsOneUpdatePerIntermediateHop) {
  auto cores = MakeCores(5);
  auto beta = cores[0]->New<Message>("beta");
  auto observer = cores[4]->RefTo<Message>(beta.handle());
  for (int i = 0; i < 3; ++i)
    cores[static_cast<std::size_t>(i)]->MoveId(
        beta.target(), cores[static_cast<std::size_t>(i + 1)]->id());

  Record();
  observer.Call("text");
  rt.RunUntilIdle();
  // Requests: observer->0, 0->1, 1->2, 2->3 (4 requests), 1 direct reply,
  // tracker updates to the 3 forwarding hops (0,1,2) from core3.
  EXPECT_EQ(CountKind(MessageKind::kInvokeRequest), 4u);
  EXPECT_EQ(CountKind(MessageKind::kInvokeReply), 1u);
  EXPECT_EQ(CountKind(MessageKind::kTrackerUpdate), 3u);
  for (const Entry& e : log)
    if (e.kind == MessageKind::kTrackerUpdate)
      EXPECT_EQ(e.from, cores[3]->id());
}

TEST_F(ProtocolTest, MoveIsOneRequestOneReply) {
  auto cores = MakeCores(2);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[0]->New<Data>(std::size_t{5000});
  worker.Call("bind", {Value(data.handle()), Value("pull")});
  Record();
  cores[0]->Move(worker, cores[1]->id());
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, MessageKind::kMoveRequest);
  EXPECT_EQ(log[1].kind, MessageKind::kMoveReply);
}

TEST_F(ProtocolTest, RoutedMoveCommandUsesInvocationEnvelope) {
  auto cores = MakeCores(3);
  auto msg = cores[0]->New<Message>("m");
  auto ref = cores[2]->RefTo<Message>(msg.handle());
  Record();
  cores[2]->Move(ref, cores[1]->id());
  rt.RunUntilIdle();
  // Command: InvokeRequest core2->core0; the move itself: MoveRequest
  // core0->core1 + MoveReply; then InvokeReply core0->core2.
  EXPECT_EQ(CountKind(MessageKind::kInvokeRequest), 1u);
  EXPECT_EQ(CountKind(MessageKind::kMoveRequest), 1u);
  EXPECT_EQ(CountKind(MessageKind::kMoveReply), 1u);
  EXPECT_EQ(CountKind(MessageKind::kInvokeReply), 1u);
}

TEST_F(ProtocolTest, HomeRegistryAddsOneAsyncUpdatePerRemoteArrival) {
  rt.EnableHomeRegistry(true);
  auto cores = MakeCores(3);
  auto msg = cores[0]->New<Message>("m");  // home: core0; local, no message
  Record();
  cores[0]->Move(msg, cores[1]->id());
  rt.RunUntilIdle();
  // Move + reply + one kDirectoryPublish core1 -> core0 (the origin shard).
  EXPECT_EQ(CountKind(MessageKind::kDirectoryPublish), 1u);
  bool saw_update = false;
  for (const Entry& e : log)
    if (e.kind == MessageKind::kDirectoryPublish &&
        e.from == cores[1]->id() && e.to == cores[0]->id())
      saw_update = true;
  EXPECT_TRUE(saw_update);
}

TEST_F(ProtocolTest, EventNotificationIsOneMessagePerRemoteListener) {
  auto cores = MakeCores(3);
  int fired = 0;
  cores[1]->ListenAt(cores[0]->id(), monitor::EventKind::kComletArrived,
                     [&](const monitor::Event&) { ++fired; });
  cores[2]->ListenAt(cores[0]->id(), monitor::EventKind::kComletArrived,
                     [&](const monitor::Event&) { ++fired; });
  Record();
  cores[0]->New<Message>("m");
  rt.RunUntilIdle();
  EXPECT_EQ(CountKind(MessageKind::kEventNotify), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(WireTest, CompositeCodecsRoundTrip) {
  serial::Writer w;
  core::wire::WriteCoreId(w, CoreId{42});
  core::wire::WriteComletId(w, ComletId{CoreId{7}, 99});
  core::wire::WriteHandle(w, ComletHandle{ComletId{CoreId{1}, 2}, CoreId{3},
                                          "T"});
  core::wire::WriteCoreList(w, {CoreId{1}, CoreId{2}});
  core::wire::WriteComletList(w, {ComletId{CoreId{1}, 1}});
  serial::Reader r(w.buffer());
  EXPECT_EQ(core::wire::ReadCoreId(r), CoreId{42});
  EXPECT_EQ(core::wire::ReadComletId(r), (ComletId{CoreId{7}, 99}));
  ComletHandle h = core::wire::ReadHandle(r);
  EXPECT_EQ(h.id.seq, 2u);
  EXPECT_EQ(h.anchor_type, "T");
  EXPECT_EQ(core::wire::ReadCoreList(r).size(), 2u);
  EXPECT_EQ(core::wire::ReadComletList(r).size(), 1u);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, CheckOkThrowsTheCarriedError) {
  serial::Writer w;
  core::wire::WriteError(w, "boom");
  serial::Reader r(w.buffer());
  try {
    core::wire::CheckOk(r);
    FAIL() << "expected FargoError";
  } catch (const FargoError& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST_F(ProtocolTest, LocalOperationsSendNothing) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  Record();
  counter.Call("increment");
  counter.Call("get");
  cores[0]->BindName("c", counter);
  cores[0]->LookupAt(cores[0]->id(), "c");
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace fargo::testing
