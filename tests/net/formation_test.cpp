// Formation battery: golden flush-policy tests (exact byte and deadline
// boundaries), lane-separation rules, the single-item raw-send guarantee,
// batch-item codec symmetry, and the priority-lane regression — heartbeats
// must never queue behind a large frame on a slow link (the failure-detector
// race the kPriority lane exists to prevent).
#include "src/net/formation.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/net/network.h"
#include "src/serial/frame.h"
#include "src/sim/scheduler.h"

namespace fargo::net {
namespace {

class FormationTest : public ::testing::Test {
 protected:
  FormationTest() : net(sched), formation(a, sched, net) {
    net.SetHeaderBytes(0);  // exact byte accounting
    net.SetDefaultLink(LinkModel{Millis(5), 1e6, true});
    net.Register(b, [this](Message m) {
      arrivals.push_back({std::move(m), sched.Now()});
    });
    net.SetTap([this](const Message& m) { sends.push_back({m, sched.Now()}); });
  }

  Message Make(MessageKind kind, std::size_t bytes,
               std::uint64_t correlation = 0) {
    Message m;
    m.from = a;
    m.to = b;
    m.kind = kind;
    m.correlation = correlation;
    m.payload.assign(bytes, static_cast<std::uint8_t>(correlation));
    return m;
  }

  /// Items inside `frame`, decoded; requires kind == kBatch.
  static std::vector<Message> Unpack(const Message& frame) {
    EXPECT_EQ(frame.kind, MessageKind::kBatch);
    std::vector<Message> items;
    serial::FrameReader r(frame.payload);
    while (r.HasNext()) {
      serial::Reader item = r.Next();
      items.push_back(ReadBatchItem(item));
    }
    return items;
  }

  struct Seen {
    Message msg;
    SimTime at = 0;
  };
  sim::SimScheduler sched;
  Network net;
  Formation formation;
  CoreId a{1}, b{2};
  std::vector<Seen> arrivals;
  std::vector<Seen> sends;
};

TEST_F(FormationTest, SameTickMessagesToOnePeerLeaveAsOneFrame) {
  formation.Enqueue(Make(MessageKind::kInvokeRequest, 10, 1),
                    Formation::Lane::kImmediate);
  formation.Enqueue(Make(MessageKind::kInvokeReply, 20, 2),
                    Formation::Lane::kImmediate);
  formation.Enqueue(Make(MessageKind::kTrackerUpdate, 5, 3),
                    Formation::Lane::kImmediate);
  sched.RunUntilIdle();

  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].at, 0) << "delay-0 flush must not add latency";
  const std::vector<Message> items = Unpack(sends[0].msg);
  ASSERT_EQ(items.size(), 3u);
  // Enqueue order is preserved through the frame.
  EXPECT_EQ(items[0].kind, MessageKind::kInvokeRequest);
  EXPECT_EQ(items[1].kind, MessageKind::kInvokeReply);
  EXPECT_EQ(items[2].kind, MessageKind::kTrackerUpdate);
  EXPECT_EQ(items[1].correlation, 2u);
  EXPECT_EQ(items[1].payload.size(), 20u);
  EXPECT_EQ(formation.frames(), 1u);
  EXPECT_EQ(formation.batched_items(), 3u);
  EXPECT_EQ(formation.single_sends(), 0u);
}

TEST_F(FormationTest, SingleOccupantFlushSendsTheRawMessageUnchanged) {
  Message m = Make(MessageKind::kInvokeRequest, 33, 77);
  m.session.origin = a;
  m.session.peer = b;
  m.session.epoch = 4;
  m.session.slot = 2;
  m.session.seq = 9;
  const Message expect = m;
  formation.Enqueue(std::move(m), Formation::Lane::kImmediate);
  sched.RunUntilIdle();

  // At low load the wire is byte-identical to an unbatched build: no
  // kBatch envelope, nothing re-encoded.
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].msg.kind, MessageKind::kInvokeRequest);
  EXPECT_EQ(sends[0].msg.payload, expect.payload);
  EXPECT_EQ(sends[0].msg.correlation, expect.correlation);
  EXPECT_EQ(sends[0].msg.session, expect.session);
  EXPECT_EQ(formation.single_sends(), 1u);
  EXPECT_EQ(formation.frames(), 0u);
}

TEST_F(FormationTest, BulkFlushesAtTheExactByteBoundary) {
  FormationPolicy p;
  p.flush_bytes = 100;
  p.flush_after = Seconds(10);  // deadline far away: bytes must trigger
  formation.SetPolicy(p);

  formation.Enqueue(Make(MessageKind::kEventNotify, 40),
                    Formation::Lane::kBulk);
  formation.Enqueue(Make(MessageKind::kEventNotify, 59),
                    Formation::Lane::kBulk);
  EXPECT_TRUE(sends.empty()) << "99 bytes: below the boundary, must hold";
  formation.Enqueue(Make(MessageKind::kEventNotify, 1),
                    Formation::Lane::kBulk);
  // 100 bytes: the boundary is inclusive, and the flush is synchronous.
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].at, 0);
  EXPECT_EQ(Unpack(sends[0].msg).size(), 3u);
  EXPECT_EQ(formation.queued(), 0u);
}

TEST_F(FormationTest, BulkFlushesAtTheExactDeadline) {
  FormationPolicy p;
  p.flush_bytes = 100000;  // bytes out of reach: the clock must trigger
  p.flush_after = Millis(7);
  formation.SetPolicy(p);

  formation.Enqueue(Make(MessageKind::kEventNotify, 10, 1),
                    Formation::Lane::kBulk);
  // A second item mid-wait must NOT re-arm the deadline — it is measured
  // from the FIRST queued item.
  sched.RunFor(Millis(3));
  formation.Enqueue(Make(MessageKind::kEventNotify, 10, 2),
                    Formation::Lane::kBulk);
  sched.RunUntilIdle();

  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].at, Millis(7));
  EXPECT_EQ(Unpack(sends[0].msg).size(), 2u);
}

TEST_F(FormationTest, LanesForOnePeerFlushSeparately) {
  formation.Enqueue(Make(MessageKind::kInvokeRequest, 10, 1),
                    Formation::Lane::kImmediate);
  formation.Enqueue(Make(MessageKind::kInvokeRequest, 10, 2),
                    Formation::Lane::kImmediate);
  formation.Enqueue(Make(MessageKind::kControl, 4, 3),
                    Formation::Lane::kPriority);
  formation.Enqueue(Make(MessageKind::kControl, 4, 4),
                    Formation::Lane::kPriority);
  sched.RunUntilIdle();

  // Two frames: the immediate pair and the priority pair — priority
  // traffic never rides in an immediate frame.
  ASSERT_EQ(sends.size(), 2u);
  for (const Seen& s : sends) {
    const std::vector<Message> items = Unpack(s.msg);
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].kind, items[1].kind);
  }
}

TEST_F(FormationTest, PriorityTrafficBeatsABigFrameOnASlowLink) {
  // Regression (failure-detector race): a heartbeat enqueued in the same
  // tick as a large payload for the same peer must arrive on its own small
  // frame. Merged, its arrival would be delayed by the big frame's entire
  // serialization time — 8 s on this link — and the detector would declare
  // a live peer dead.
  net.SetLinkOneWay(a, b, LinkModel{Millis(1), 1000.0, true});  // 1 kB/s

  formation.Enqueue(Make(MessageKind::kMoveRequest, 8000, 1),
                    Formation::Lane::kImmediate);
  Message ping = Make(MessageKind::kControl, 8, 2);
  formation.Enqueue(std::move(ping), Formation::Lane::kPriority);
  sched.RunUntilIdle();

  ASSERT_EQ(arrivals.size(), 2u);
  SimTime ping_at = -1, bulk_at = -1;
  for (const Seen& s : arrivals) {
    if (s.msg.kind == MessageKind::kControl) ping_at = s.at;
    if (s.msg.kind == MessageKind::kMoveRequest) bulk_at = s.at;
  }
  ASSERT_GE(ping_at, 0) << "heartbeat was merged into the big frame";
  // 8 B at 1 kB/s = 8 ms transfer + 1 ms latency, far under the 8 s the
  // move payload needs.
  EXPECT_EQ(ping_at, Millis(1) + Millis(8));
  EXPECT_GT(bulk_at, Seconds(7));
  EXPECT_LT(ping_at, bulk_at / 100);
}

TEST_F(FormationTest, LoopbackBypassesFormation) {
  net.Register(a, [this](Message m) {
    arrivals.push_back({std::move(m), sched.Now()});
  });
  Message m = Make(MessageKind::kInvokeRequest, 10, 1);
  m.to = a;  // self-send
  formation.Enqueue(std::move(m), Formation::Lane::kBulk);
  // No flush needed: the message went straight to the network.
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].msg.kind, MessageKind::kInvokeRequest);
  EXPECT_EQ(formation.queued(), 0u);
  EXPECT_EQ(formation.flushes(), 0u);
}

TEST_F(FormationTest, DisabledFormationSendsStraightThrough) {
  formation.SetEnabled(false);
  formation.Enqueue(Make(MessageKind::kInvokeRequest, 10, 1),
                    Formation::Lane::kImmediate);
  formation.Enqueue(Make(MessageKind::kEventNotify, 10, 2),
                    Formation::Lane::kBulk);
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[0].msg.kind, MessageKind::kInvokeRequest);
  EXPECT_EQ(sends[1].msg.kind, MessageKind::kEventNotify);
  EXPECT_EQ(formation.flushes(), 0u);
  EXPECT_EQ(formation.queued(), 0u);
}

TEST_F(FormationTest, DiscardDropsQueuedTrafficAndTimersCleanly) {
  formation.Enqueue(Make(MessageKind::kEventNotify, 10, 1),
                    Formation::Lane::kBulk);
  EXPECT_EQ(formation.queued(), 1u);
  formation.Discard();
  EXPECT_EQ(formation.queued(), 0u);
  sched.RunUntilIdle();
  EXPECT_TRUE(sends.empty()) << "discarded traffic leaked onto the wire";
  // The cancelled flush timer must not corrupt the scheduler's accounting
  // (a Cancel after firing would leak a tombstone).
  EXPECT_EQ(sched.PendingCount(), 0u);
}

TEST_F(FormationTest, FlushAllDrainsEveryQueueInDeterministicOrder) {
  CoreId c{3};
  net.Register(c, [](Message) {});
  Message to_c = Make(MessageKind::kEventNotify, 10, 1);
  to_c.to = c;
  formation.Enqueue(std::move(to_c), Formation::Lane::kBulk);
  formation.Enqueue(Make(MessageKind::kEventNotify, 10, 2),
                    Formation::Lane::kBulk);
  formation.Enqueue(Make(MessageKind::kEventNotify, 10, 3),
                    Formation::Lane::kBulk);
  formation.FlushAll();
  ASSERT_EQ(sends.size(), 2u);
  // Queues drain ordered by (dest, lane): b (2 items batched) before c.
  EXPECT_EQ(sends[0].msg.to, b);
  EXPECT_EQ(Unpack(sends[0].msg).size(), 2u);
  EXPECT_EQ(sends[1].msg.to, c);
  EXPECT_EQ(sends[1].msg.kind, MessageKind::kEventNotify);
  EXPECT_EQ(formation.queued(), 0u);
}

TEST_F(FormationTest, FlushHookReportsEveryDepartureWithItemsAndBytes) {
  struct Flush {
    CoreId dest;
    Formation::Lane lane;
    std::size_t items, bytes;
  };
  std::vector<Flush> hooks;
  formation.SetFlushHook([&](CoreId dest, Formation::Lane lane,
                             std::size_t items, std::size_t bytes) {
    hooks.push_back({dest, lane, items, bytes});
  });
  formation.Enqueue(Make(MessageKind::kInvokeRequest, 10, 1),
                    Formation::Lane::kImmediate);
  formation.Enqueue(Make(MessageKind::kInvokeRequest, 10, 2),
                    Formation::Lane::kImmediate);
  formation.Enqueue(Make(MessageKind::kEventNotify, 7, 3),
                    Formation::Lane::kBulk);
  formation.FlushAll();
  sched.RunUntilIdle();
  ASSERT_EQ(hooks.size(), 2u);
  EXPECT_EQ(hooks[0].items, 2u);
  EXPECT_EQ(hooks[0].lane, Formation::Lane::kImmediate);
  EXPECT_GT(hooks[0].bytes, 20u);  // frame overhead on top of payloads
  EXPECT_EQ(hooks[1].items, 1u);
  EXPECT_EQ(hooks[1].bytes, 7u);  // single raw send: payload bytes exactly
}

TEST(BatchItemCodecTest, RoundTripsEveryField) {
  std::mt19937 rng(99);
  for (int round = 0; round < 200; ++round) {
    Message m;
    m.from = CoreId{static_cast<std::uint32_t>(rng() % 100)};
    m.to = CoreId{static_cast<std::uint32_t>(rng() % 100)};
    m.kind = static_cast<MessageKind>(rng() % 17);
    m.correlation = rng();
    m.session.origin = CoreId{static_cast<std::uint32_t>(rng() % 100)};
    m.session.peer = CoreId{static_cast<std::uint32_t>(rng() % 100)};
    m.session.epoch = rng() % 5;
    m.session.slot = static_cast<std::uint32_t>(rng() % 64);
    m.session.seq = rng();
    m.payload.resize(rng() % 200);
    for (std::uint8_t& byte : m.payload)
      byte = static_cast<std::uint8_t>(rng());

    serial::Writer w;
    WriteBatchItem(w, m);
    serial::Reader r(w.buffer());
    const Message back = ReadBatchItem(r);
    EXPECT_EQ(back.kind, m.kind);
    EXPECT_EQ(back.correlation, m.correlation);
    EXPECT_EQ(back.session, m.session);
    EXPECT_EQ(back.payload, m.payload);
    EXPECT_TRUE(r.AtEnd());
  }
}

}  // namespace
}  // namespace fargo::net
