// Session/slot-replay battery (tentpole lock-down, part 1).
//
// Unit tests pin the SessionPool lease discipline and the ReplayDirectory
// admission table from src/net/session.h. The property tests then drive
// randomized (seeded) duplicate/reorder/loss schedules through a pool +
// directory pair against an exact model: every admitted request executes
// exactly once, and every replayed reply is byte-identical to the reply
// cached at execution time. Finally a chaos-soak twin runs the machinery
// end to end against the PR-6 OpLedger (a non-idempotent op recorder) and
// cross-checks the wire: all replies carrying the same session key must be
// the same bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <tuple>
#include <vector>

#include "src/net/formation.h"
#include "src/net/session.h"
#include "src/serial/frame.h"
#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using net::Admission;
using net::MessageKind;
using net::ReplayDirectory;
using net::SessionKey;
using net::SessionPool;

constexpr CoreId kOrigin{1};
constexpr CoreId kPeer{2};

std::vector<std::uint8_t> Bytes(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

// ---- SessionPool ------------------------------------------------------------

TEST(SessionPoolTest, AcquireGrowsThenRecyclesLifoWithBumpedSeq) {
  SessionPool pool;
  SessionKey a = pool.Acquire(kOrigin, kPeer);
  SessionKey b = pool.Acquire(kOrigin, kPeer);
  SessionKey c = pool.Acquire(kOrigin, kPeer);
  EXPECT_EQ(a.slot, 0u);
  EXPECT_EQ(b.slot, 1u);
  EXPECT_EQ(c.slot, 2u);
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(a.origin, kOrigin);
  EXPECT_EQ(a.peer, kPeer);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(pool.slots_in_flight(), 3u);

  pool.Release(b);
  pool.Release(a);
  EXPECT_EQ(pool.slots_in_flight(), 1u);
  // LIFO: the most recently freed slot is reused first, with a higher seq
  // so the executor can tell the new tenant from a retry of the old one.
  SessionKey d = pool.Acquire(kOrigin, kPeer);
  EXPECT_EQ(d.slot, a.slot);
  EXPECT_EQ(d.seq, a.seq + 1);
  SessionKey e = pool.Acquire(kOrigin, kPeer);
  EXPECT_EQ(e.slot, b.slot);
  EXPECT_EQ(e.seq, b.seq + 1);
  EXPECT_EQ(pool.slots_allocated(), 3u);  // no growth: recycling worked
}

TEST(SessionPoolTest, ReleaseIsIdempotentAndGuarded) {
  SessionPool pool;
  SessionKey a = pool.Acquire(kOrigin, kPeer);
  pool.Release(a);
  EXPECT_EQ(pool.slots_in_flight(), 0u);
  pool.Release(a);  // double release: no-op
  EXPECT_EQ(pool.slots_in_flight(), 0u);

  // The slot has been re-leased; releasing through the OLD key must not
  // free the new tenant's lease.
  SessionKey b = pool.Acquire(kOrigin, kPeer);
  ASSERT_EQ(b.slot, a.slot);
  pool.Release(a);
  EXPECT_EQ(pool.slots_in_flight(), 1u);

  // Unknown peer / out-of-range slot: no-op, no crash.
  SessionKey junk = b;
  junk.peer = CoreId{99};
  pool.Release(junk);
  junk = b;
  junk.slot = 1000;
  pool.Release(junk);
  EXPECT_EQ(pool.slots_in_flight(), 1u);
}

TEST(SessionPoolTest, EpochFencesLeasesAcrossIncarnations) {
  SessionPool pool;
  SessionKey old_key = pool.Acquire(kOrigin, kPeer);
  EXPECT_EQ(old_key.epoch, 1u);

  // Restart: keys from the previous incarnation must not free anything.
  pool.SetEpoch(2);
  pool.Release(old_key);
  EXPECT_EQ(pool.slots_in_flight(), 1u);

  SessionKey fresh = pool.Acquire(kOrigin, kPeer);
  EXPECT_EQ(fresh.epoch, 2u);
  pool.Release(fresh);
  EXPECT_EQ(pool.slots_in_flight(), 1u);  // only the orphaned old lease
}

TEST(SessionPoolTest, SessionsArePerPeerAndClearable) {
  SessionPool pool;
  pool.Acquire(kOrigin, kPeer);
  pool.Acquire(kOrigin, CoreId{3});
  pool.Acquire(kOrigin, CoreId{3});
  EXPECT_EQ(pool.session_count(), 2u);
  EXPECT_EQ(pool.slots_allocated(), 3u);
  EXPECT_EQ(pool.slots_in_flight(), 3u);
  pool.Clear();
  EXPECT_EQ(pool.session_count(), 0u);
  EXPECT_EQ(pool.slots_in_flight(), 0u);
}

// ---- ReplayDirectory --------------------------------------------------------

SessionKey Key(std::uint64_t epoch, std::uint32_t slot, std::uint64_t seq) {
  SessionKey k;
  k.origin = kOrigin;
  k.peer = kPeer;
  k.epoch = epoch;
  k.slot = slot;
  k.seq = seq;
  return k;
}

TEST(ReplayDirectoryTest, FreshInProgressReplayLifecycle) {
  ReplayDirectory dir;
  const SessionKey k = Key(1, 0, 1);

  EXPECT_EQ(dir.Admit(k).outcome, Admission::kFresh);
  // Duplicate racing in while the first copy executes: suppressed.
  EXPECT_EQ(dir.Admit(k).outcome, Admission::kInProgress);
  EXPECT_EQ(dir.suppressed(), 1u);

  const std::vector<std::uint8_t> reply = Bytes({9, 8, 7});
  EXPECT_TRUE(dir.Complete(k, MessageKind::kInvokeReply, reply));

  // Post-completion duplicate: the cached reply comes back verbatim.
  ReplayDirectory::AdmitResult r = dir.Admit(k);
  EXPECT_EQ(r.outcome, Admission::kReplay);
  EXPECT_EQ(r.reply_kind, MessageKind::kInvokeReply);
  ASSERT_NE(r.reply, nullptr);
  EXPECT_EQ(*r.reply, reply);
  EXPECT_EQ(dir.replays(), 1u);
}

TEST(ReplayDirectoryTest, SlotReuseRetiresThePreviousTenant) {
  ReplayDirectory dir;
  const SessionKey first = Key(1, 0, 1);
  const SessionKey second = Key(1, 0, 2);  // same slot, next lease

  EXPECT_EQ(dir.Admit(first).outcome, Admission::kFresh);
  EXPECT_TRUE(dir.Complete(first, MessageKind::kInvokeReply, Bytes({1})));
  EXPECT_EQ(dir.Admit(second).outcome, Admission::kFresh);

  // Straggler of the retired tenant: dropped, never replayed — the origin
  // already settled it (it released the slot).
  EXPECT_EQ(dir.Admit(first).outcome, Admission::kStale);
  EXPECT_EQ(dir.stale_drops(), 1u);
  // And the retired tenant's reply is gone (no unbounded growth).
  EXPECT_TRUE(dir.Complete(second, MessageKind::kInvokeReply, Bytes({2})));
  ReplayDirectory::AdmitResult r = dir.Admit(second);
  ASSERT_EQ(r.outcome, Admission::kReplay);
  EXPECT_EQ(*r.reply, Bytes({2}));
}

TEST(ReplayDirectoryTest, HigherEpochResetsLowerEpochIsStale) {
  ReplayDirectory dir;
  EXPECT_EQ(dir.Admit(Key(1, 0, 5)).outcome, Admission::kFresh);
  EXPECT_TRUE(dir.Complete(Key(1, 0, 5), MessageKind::kInvokeReply,
                           Bytes({1})));

  // The origin restarted: its epoch-2 request uses the same slot with a
  // LOWER seq (a fresh incarnation starts over). The window resets.
  EXPECT_EQ(dir.Admit(Key(2, 0, 1)).outcome, Admission::kFresh);
  EXPECT_EQ(dir.window_count(), 1u);
  EXPECT_EQ(dir.slot_count(), 1u);

  // Stragglers from the dead incarnation are stale, whatever their seq.
  EXPECT_EQ(dir.Admit(Key(1, 0, 5)).outcome, Admission::kStale);
  EXPECT_EQ(dir.Admit(Key(1, 3, 9)).outcome, Admission::kStale);
}

TEST(ReplayDirectoryTest, InvalidKeysBypassAdmission) {
  ReplayDirectory dir;
  SessionKey sessionless;  // epoch 0
  EXPECT_EQ(dir.Admit(sessionless).outcome, Admission::kFresh);
  EXPECT_EQ(dir.Admit(sessionless).outcome, Admission::kFresh);
  EXPECT_FALSE(dir.Complete(sessionless, MessageKind::kInvokeReply,
                            Bytes({1})));
  EXPECT_EQ(dir.window_count(), 0u);  // nothing tracked for sessionless
}

TEST(ReplayDirectoryTest, CompleteNeverCreatesOrOverwritesState) {
  ReplayDirectory dir;
  // Completing a key that was never admitted (park-expiry error replies,
  // recovery replies) must not materialize a window.
  EXPECT_FALSE(dir.Complete(Key(1, 0, 1), MessageKind::kInvokeReply,
                            Bytes({1})));
  EXPECT_EQ(dir.window_count(), 0u);

  ASSERT_EQ(dir.Admit(Key(1, 0, 1)).outcome, Admission::kFresh);
  // Unknown slot in a known window: no-op.
  EXPECT_FALSE(dir.Complete(Key(1, 7, 1), MessageKind::kInvokeReply,
                            Bytes({1})));
  // Seq mismatch (slot re-leased under the executing request): no-op.
  EXPECT_FALSE(dir.Complete(Key(1, 0, 9), MessageKind::kInvokeReply,
                            Bytes({1})));
  // First completion wins; a second must not overwrite the cached bytes.
  EXPECT_TRUE(dir.Complete(Key(1, 0, 1), MessageKind::kInvokeReply,
                           Bytes({42})));
  EXPECT_FALSE(dir.Complete(Key(1, 0, 1), MessageKind::kControlReply,
                            Bytes({99})));
  ReplayDirectory::AdmitResult r = dir.Admit(Key(1, 0, 1));
  ASSERT_EQ(r.outcome, Admission::kReplay);
  EXPECT_EQ(r.reply_kind, MessageKind::kInvokeReply);
  EXPECT_EQ(*r.reply, Bytes({42}));
}

TEST(ReplayDirectoryTest, PeekReportsWithoutMutatingWindowState) {
  ReplayDirectory dir;
  const SessionKey k = Key(1, 0, 1);
  EXPECT_EQ(dir.Peek(k).outcome, Admission::kFresh);  // nothing known yet
  EXPECT_EQ(dir.window_count(), 0u);                  // ...and still nothing

  ASSERT_EQ(dir.Admit(k).outcome, Admission::kFresh);
  EXPECT_EQ(dir.Peek(k).outcome, Admission::kInProgress);
  ASSERT_TRUE(dir.Complete(k, MessageKind::kInvokeReply, Bytes({5})));
  ReplayDirectory::AdmitResult r = dir.Peek(k);
  ASSERT_EQ(r.outcome, Admission::kReplay);
  EXPECT_EQ(*r.reply, Bytes({5}));
  // Peeking twice keeps reporting the same thing: the probe is read-only
  // on window state (only the telemetry advances).
  EXPECT_EQ(dir.Peek(k).outcome, Admission::kReplay);
  EXPECT_EQ(dir.replays(), 2u);
}

TEST(ReplayDirectoryTest, SeedAndSnapshotRoundTripForRecovery) {
  ReplayDirectory live;
  ASSERT_EQ(live.Admit(Key(1, 0, 1)).outcome, Admission::kFresh);
  ASSERT_TRUE(live.Complete(Key(1, 0, 1), MessageKind::kInvokeReply,
                            Bytes({1, 2})));
  ASSERT_EQ(live.Admit(Key(1, 1, 1)).outcome, Admission::kFresh);
  // Slot 1 is mid-execution at snapshot time: volatile, not checkpointed.
  std::vector<ReplayDirectory::SeedEntry> snap = live.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].key, Key(1, 0, 1));
  EXPECT_EQ(snap[0].reply, Bytes({1, 2}));

  // A recovered executor seeds a fresh directory from the WAL and answers
  // duplicates exactly as the pre-crash incarnation would have.
  ReplayDirectory recovered;
  for (const ReplayDirectory::SeedEntry& e : snap)
    recovered.Seed(e.key, e.reply_kind, e.reply);
  ReplayDirectory::AdmitResult r = recovered.Admit(Key(1, 0, 1));
  ASSERT_EQ(r.outcome, Admission::kReplay);
  EXPECT_EQ(*r.reply, Bytes({1, 2}));

  // Later seeds of the same slot win (WAL replay is append-ordered).
  recovered.Seed(Key(1, 0, 2), MessageKind::kInvokeReply, Bytes({3}));
  ReplayDirectory::AdmitResult r2 = recovered.Admit(Key(1, 0, 2));
  ASSERT_EQ(r2.outcome, Admission::kReplay);
  EXPECT_EQ(*r2.reply, Bytes({3}));
  // ...and stale seeds are ignored.
  recovered.Seed(Key(1, 0, 1), MessageKind::kInvokeReply, Bytes({9}));
  EXPECT_EQ(recovered.Admit(Key(1, 0, 1)).outcome, Admission::kStale);
}

// ---- Property tests: randomized duplicate/reorder/loss schedules -----------
//
// A pool+directory pair is driven by a seeded schedule that interleaves new
// requests, out-of-order delivery attempts (including duplicates), dropped
// attempts, asynchronous completions, and origin-side settlement. The model
// asserts, inline and at the end:
//   * every request executes at most once, and exactly once if any attempt
//     was delivered before its slot was recycled;
//   * every kReplay hands back bytes identical to the cached reply;
//   * directory telemetry equals the model's own tally.

class SessionScheduleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SessionScheduleTest, ScheduleIsExactlyOnceWithByteIdenticalReplays) {
  std::mt19937 rng(GetParam());
  SessionPool pool;
  ReplayDirectory dir;

  struct Op {
    SessionKey key;
    std::vector<std::uint8_t> reply;  // canonical bytes, fixed at execution
    int executions = 0;
    bool executing = false;
    bool completed = false;
    bool settled = false;    // origin released the slot
    int delivered = 0;       // attempts that reached Admit
  };
  std::vector<Op> ops;
  // Outstanding delivery attempts, as op indices. Processing order is
  // randomized (reorder); attempts may be processed twice (duplication)
  // or discarded unprocessed (loss).
  std::vector<std::size_t> wire;

  std::uint64_t model_replays = 0, model_suppressed = 0, model_stale = 0;

  auto dice = [&](std::uint32_t n) { return rng() % n; };

  for (int step = 0; step < 4000; ++step) {
    const std::uint32_t roll = dice(100);
    if (roll < 22 || wire.empty()) {
      // New request: lease a slot, put 1..3 copies on the wire.
      Op op;
      op.key = pool.Acquire(kOrigin, kPeer);
      ops.push_back(op);
      const std::size_t idx = ops.size() - 1;
      const std::uint32_t copies = 1 + dice(3);
      for (std::uint32_t i = 0; i < copies; ++i) wire.push_back(idx);
    } else if (roll < 30) {
      // Loss: an attempt evaporates.
      const std::size_t pick = dice(static_cast<std::uint32_t>(wire.size()));
      wire[pick] = wire.back();
      wire.pop_back();
    } else if (roll < 40) {
      // Reply lost at the origin: it retries — another copy on the wire.
      const std::size_t pick = dice(static_cast<std::uint32_t>(wire.size()));
      wire.push_back(wire[pick]);
    } else if (roll < 75) {
      // Deliver a random outstanding attempt (reorder by construction).
      const std::size_t pick = dice(static_cast<std::uint32_t>(wire.size()));
      const std::size_t idx = wire[pick];
      wire[pick] = wire.back();
      wire.pop_back();
      Op& op = ops[idx];
      ++op.delivered;
      const ReplayDirectory::AdmitResult r = dir.Admit(op.key);
      switch (r.outcome) {
        case Admission::kFresh:
          ASSERT_EQ(op.executions, 0) << "re-execution at step " << step;
          ASSERT_FALSE(op.settled);
          ++op.executions;
          op.executing = true;
          break;
        case Admission::kInProgress:
          ASSERT_TRUE(op.executing) << "suppressed but not executing";
          ++model_suppressed;
          break;
        case Admission::kReplay: {
          ASSERT_TRUE(op.completed);
          ASSERT_NE(r.reply, nullptr);
          ASSERT_EQ(*r.reply, op.reply)
              << "replayed bytes differ at step " << step;
          ASSERT_EQ(r.reply_kind, MessageKind::kInvokeReply);
          ++model_replays;
          break;
        }
        case Admission::kStale:
          // Only possible once the origin settled this op and re-leased
          // its slot to a younger request.
          ASSERT_TRUE(op.settled);
          ++model_stale;
          break;
      }
    } else if (roll < 90) {
      // Finish a random executing op: cache its (random) reply bytes.
      std::vector<std::size_t> executing;
      for (std::size_t i = 0; i < ops.size(); ++i)
        if (ops[i].executing && !ops[i].completed) executing.push_back(i);
      if (executing.empty()) continue;
      Op& op = ops[executing[dice(
          static_cast<std::uint32_t>(executing.size()))]];
      op.reply = {static_cast<std::uint8_t>(dice(256)),
                  static_cast<std::uint8_t>(dice(256)),
                  static_cast<std::uint8_t>(dice(256))};
      ASSERT_TRUE(dir.Complete(op.key, MessageKind::kInvokeReply, op.reply));
      op.completed = true;
    } else {
      // Origin observes a reply and settles: the slot recycles.
      std::vector<std::size_t> done;
      for (std::size_t i = 0; i < ops.size(); ++i)
        if (ops[i].completed && !ops[i].settled) done.push_back(i);
      if (done.empty()) continue;
      Op& op = ops[done[dice(static_cast<std::uint32_t>(done.size()))]];
      pool.Release(op.key);
      op.settled = true;
    }
  }

  // Final audit: exactly-once, with the loss-only exception.
  for (const Op& op : ops) {
    EXPECT_LE(op.executions, 1);
    if (op.delivered > 0 && !op.settled) {
      EXPECT_EQ(op.executions, 1)
          << "a delivered, unsettled request failed to execute";
    }
  }
  EXPECT_EQ(dir.replays(), model_replays);
  EXPECT_EQ(dir.suppressed(), model_suppressed);
  EXPECT_EQ(dir.stale_drops(), model_stale);
  // Slot economy: the directory tracks at most as many slots as the origin
  // ever had concurrently outstanding — not one per request. (At most:
  // a slot whose every attempt was lost never reaches the directory.)
  EXPECT_LE(dir.slot_count(), pool.slots_allocated());
  EXPECT_LT(dir.slot_count(), ops.size());
}

TEST_P(SessionScheduleTest, EpochRolloverStalesEveryOutstandingAttempt) {
  std::mt19937 rng(GetParam() ^ 0x9e3779b9u);
  SessionPool pool;
  ReplayDirectory dir;

  // Phase 1: a burst of requests, half completed.
  std::vector<SessionKey> old_keys;
  for (int i = 0; i < 40; ++i) {
    SessionKey k = pool.Acquire(kOrigin, kPeer);
    ASSERT_EQ(dir.Admit(k).outcome, Admission::kFresh);
    if (i % 2 == 0) {
      ASSERT_TRUE(dir.Complete(k, MessageKind::kInvokeReply,
                               Bytes({static_cast<std::uint8_t>(i)})));
    }
    old_keys.push_back(k);
  }

  // Phase 2: origin restarts with a higher epoch; one new-epoch request
  // resets the window.
  pool.SetEpoch(pool.epoch() + 1);
  pool.Clear();
  SessionKey fresh = pool.Acquire(kOrigin, kPeer);
  ASSERT_EQ(dir.Admit(fresh).outcome, Admission::kFresh);

  // Phase 3: every old-epoch straggler — completed or not, any order — is
  // stale; none replays, none re-executes.
  std::shuffle(old_keys.begin(), old_keys.end(), rng);
  for (const SessionKey& k : old_keys)
    EXPECT_EQ(dir.Admit(k).outcome, Admission::kStale);
  EXPECT_EQ(dir.stale_drops(), old_keys.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionScheduleTest,
                         ::testing::Values(1u, 17u, 4242u, 90210u, 777777u));

// ---- Chaos-soak twin: end-to-end cross-check against the OpLedger ----------
//
// The unit/property layers above prove the directory's table; this proves
// the *wiring*: a real runtime under chaos faults, invoking a non-idempotent
// OpLedger that records double-executions exactly (PR 6), while a network
// tap checks the byte-identical-replay guarantee on the actual wire — every
// invoke reply carrying the same session key must be the same bytes.

class SessionChaosTwinTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SessionChaosTwinTest, WireRepliesPerSessionKeyAreByteIdentical) {
  RegisterTestComlets();
  core::Runtime rt;
  const int kCores = 3;
  std::vector<core::Core*> cores;
  for (int i = 0; i < kCores; ++i)
    cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
  rt.network().SetDefaultLink(net::LinkModel{Millis(2), 1e7, true});

  core::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = Millis(20);
  policy.seed = GetParam();
  for (core::Core* c : cores) {
    c->SetRpcTimeout(Millis(200));
    c->SetRetryPolicy(policy);
  }

  // Heavy duplication: the tap must see plenty of replayed replies.
  net::FaultPlan plan;
  plan.seed = GetParam();
  plan.drop = 0.06;
  plan.duplicate = 0.05;
  plan.reorder = 0.08;
  plan.reorder_jitter = Millis(8);
  rt.network().SetFaultPlan(plan);

  // Record every invoke-reply payload per session key, unwrapping batch
  // frames (replayed replies ride the wire like any other message).
  using FlatKey =
      std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, std::uint32_t,
                 std::uint64_t>;
  std::map<FlatKey, std::vector<std::uint8_t>> first_reply;
  std::uint64_t replies_checked = 0, divergent = 0;
  auto check = [&](const net::Message& m) {
    if (m.kind != MessageKind::kInvokeReply || !m.session.valid()) return;
    FlatKey k{m.session.origin.value, m.session.peer.value, m.session.epoch,
              m.session.slot, m.session.seq};
    auto [it, inserted] = first_reply.try_emplace(k, m.payload);
    if (!inserted && it->second != m.payload) ++divergent;
    if (!inserted) ++replies_checked;
  };
  rt.network().SetTap([&](const net::Message& m) {
    if (m.kind == MessageKind::kBatch) {
      serial::FrameReader frame(m.payload);
      while (frame.HasNext()) {
        serial::Reader item = frame.Next();
        check(net::ReadBatchItem(item));
      }
      return;
    }
    check(m);
  });

  auto ledger = cores[0]->New<OpLedger>();
  std::mt19937 rng(GetParam());
  int successes = 0, failures = 0;
  for (int op = 0; op < 1500; ++op) {
    if (op > 0 && op % 300 == 0) {
      // Keep the ledger moving so replays also cross executed-then-moved
      // forwarding paths (the Peek probe).
      const std::size_t dest = rng() % kCores;
      try {
        cores[0]->MoveId(ledger.target(), cores[dest]->id());
      } catch (const FargoError&) {
      }
    }
    const std::size_t from = rng() % kCores;
    auto stub = cores[from]->RefTo<OpLedger>(ledger.handle());
    try {
      stub.Invoke<std::int64_t>("apply", static_cast<std::int64_t>(op));
      ++successes;
    } catch (const FargoError&) {
      ++failures;
      std::size_t at = 0;
      for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
        if (cores[c]->repository().Contains(ledger.target())) at = c;
      cores[from]->trackers().SetForward(ledger.target(), cores[at]->id(),
                                         std::string(OpLedger::kTypeName));
    }
  }
  rt.network().ClearFaults();
  rt.RunUntilIdle();

  // Ground truth: the non-idempotent ledger saw no double executions.
  const OpLedger* anchor = nullptr;
  for (core::Core* c : cores)
    if (auto a = c->repository().Get(ledger.target()))
      anchor = static_cast<const OpLedger*>(a.get());
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(anchor->dups(), 0) << "ledger re-executed an op";
  EXPECT_GE(anchor->total(), successes);
  EXPECT_LE(anchor->total(), successes + failures);

  // Wire truth: repeated replies for one session key were byte-identical.
  EXPECT_EQ(divergent, 0u) << "a replayed reply diverged from the original";
  EXPECT_GT(replies_checked, 0u)
      << "chaos never produced a repeated reply — test lost its teeth";

  // And the machinery attributes them: directory telemetry saw the hits.
  std::uint64_t replays = 0, suppressed = 0;
  for (core::Core* c : cores) {
    replays += c->replay().replays();
    suppressed += c->replay().suppressed();
  }
  EXPECT_GT(replays + suppressed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionChaosTwinTest,
                         ::testing::Values(5u, 67u, 2026u));

}  // namespace
}  // namespace fargo::testing
