// Chaos fault-injection layer: seeded drop/duplicate/reorder, scheduled
// link flaps and Core crashes, per-reason drop accounting — all of it
// deterministic for a fixed seed.
#include "src/net/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/net/network.h"
#include "src/sim/scheduler.h"

namespace fargo::net {
namespace {

class ChaosNetworkTest : public ::testing::Test {
 protected:
  ChaosNetworkTest() : net(sched) { net.SetHeaderBytes(0); }

  Message Make(CoreId from, CoreId to, std::size_t bytes = 10) {
    Message m;
    m.from = from;
    m.to = to;
    m.kind = MessageKind::kControl;
    m.payload.assign(bytes, 0);
    return m;
  }

  sim::SimScheduler sched;
  Network net;
  CoreId a{1}, b{2}, c{3};
};

TEST(ChaosEngineTest, UnarmedNeverInterferes) {
  ChaosEngine chaos;
  EXPECT_FALSE(chaos.armed());
  for (int i = 0; i < 100; ++i) {
    const ChaosEngine::Verdict v = chaos.Decide(CoreId{1}, CoreId{2});
    EXPECT_FALSE(v.drop);
    EXPECT_EQ(v.copies, 1);
    EXPECT_EQ(v.extra[0], 0);
  }
  EXPECT_EQ(chaos.stats().drops, 0u);
}

TEST(ChaosEngineTest, SameSeedSameVerdictStream) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop = 0.2;
  plan.duplicate = 0.1;
  plan.reorder = 0.3;

  ChaosEngine x, y;
  x.Arm(plan);
  y.Arm(plan);
  for (int i = 0; i < 500; ++i) {
    const auto vx = x.Decide(CoreId{1}, CoreId{2});
    const auto vy = y.Decide(CoreId{1}, CoreId{2});
    EXPECT_EQ(vx.drop, vy.drop) << "draw " << i;
    EXPECT_EQ(vx.copies, vy.copies) << "draw " << i;
    EXPECT_EQ(vx.extra[0], vy.extra[0]) << "draw " << i;
    EXPECT_EQ(vx.extra[1], vy.extra[1]) << "draw " << i;
  }
  EXPECT_EQ(x.stats().drops, y.stats().drops);
  EXPECT_EQ(x.stats().duplicates, y.stats().duplicates);
  EXPECT_EQ(x.stats().reorders, y.stats().reorders);
}

TEST(ChaosEngineTest, DropRateIsRoughlyHonored) {
  FaultPlan plan;
  plan.drop = 0.25;
  ChaosEngine chaos;
  chaos.Arm(plan);
  int dropped = 0;
  for (int i = 0; i < 4000; ++i)
    if (chaos.Decide(CoreId{1}, CoreId{2}).drop) ++dropped;
  EXPECT_NEAR(dropped / 4000.0, 0.25, 0.05);
  EXPECT_EQ(chaos.stats().drops, static_cast<std::uint64_t>(dropped));
}

TEST(ChaosEngineTest, PerLinkPlanOverridesGlobal) {
  FaultPlan lossless;  // global default: drop nothing
  FaultPlan lossy;
  lossy.drop = 1.0;
  ChaosEngine chaos;
  chaos.Arm(lossless);
  chaos.ArmLink(CoreId{1}, CoreId{2}, lossy);
  EXPECT_TRUE(chaos.Decide(CoreId{1}, CoreId{2}).drop);
  EXPECT_FALSE(chaos.Decide(CoreId{2}, CoreId{1}).drop);  // directed
  EXPECT_FALSE(chaos.Decide(CoreId{1}, CoreId{3}).drop);
}

TEST_F(ChaosNetworkTest, DropsAreCountedByReason) {
  net.Register(b, [](Message) {});
  FaultPlan plan;
  plan.drop = 1.0;
  net.SetFaultPlan(plan);
  net.Send(Make(a, b));
  sched.RunUntilIdle();
  EXPECT_EQ(net.dropped_chaos(), 1u);
  EXPECT_EQ(net.dropped(), 1u);

  net.ClearFaults();
  net.SetPartitioned(a, b, true);
  net.Send(Make(a, b));
  net.Send(Make(a, c));  // nobody listens at c
  sched.RunUntilIdle();
  EXPECT_EQ(net.dropped_link_down(), 1u);
  EXPECT_EQ(net.dropped_unregistered(), 1u);
  EXPECT_EQ(net.dropped(), 3u);
}

TEST_F(ChaosNetworkTest, PerLinkDropStats) {
  net.Register(b, [](Message) {});
  FaultPlan plan;
  plan.drop = 1.0;
  net.SetLinkFaultPlan(a, b, plan);
  net.Send(Make(a, b));
  net.Send(Make(b, a));  // unregistered at a, but no chaos on this direction
  sched.RunUntilIdle();
  EXPECT_EQ(net.StatsBetween(a, b).dropped, 1u);
  auto all = net.AllLinkStats();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().first, (std::pair<CoreId, CoreId>{a, b}));
}

TEST_F(ChaosNetworkTest, DuplicationDeliversTwiceAndChargesTwice) {
  int arrivals = 0;
  net.Register(b, [&](Message) { ++arrivals; });
  FaultPlan plan;
  plan.duplicate = 1.0;
  net.SetFaultPlan(plan);
  net.Send(Make(a, b, 100));
  sched.RunUntilIdle();
  EXPECT_EQ(arrivals, 2);
  EXPECT_EQ(net.duplicates(), 1u);
  EXPECT_EQ(net.StatsBetween(a, b).messages, 2u);
  EXPECT_EQ(net.StatsBetween(a, b).bytes, 200u);
}

TEST_F(ChaosNetworkTest, ReorderActuallyReorders) {
  // With reorder certain and a generous jitter bound, a long enough train
  // of messages must arrive in a different order than it was sent.
  std::vector<int> order;
  net.Register(b, [&](Message m) { order.push_back(static_cast<int>(m.payload[0])); });
  net.SetLink(a, b, LinkModel{Millis(1), 1e12, true});
  FaultPlan plan;
  plan.reorder = 1.0;
  plan.reorder_jitter = Millis(50);
  net.SetFaultPlan(plan);
  for (int i = 0; i < 20; ++i) {
    Message m = Make(a, b, 1);
    m.payload[0] = static_cast<std::uint8_t>(i);
    net.Send(std::move(m));
  }
  sched.RunUntilIdle();
  ASSERT_EQ(order.size(), 20u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
  EXPECT_GT(net.reorders(), 0u);
}

TEST_F(ChaosNetworkTest, ScheduledLinkFlap) {
  int arrivals = 0;
  net.Register(b, [&](Message) { ++arrivals; });
  FaultPlan plan;
  plan.flaps.push_back(FaultPlan::LinkFlap{a, b, Millis(100), Millis(200)});
  net.SetFaultPlan(plan);

  net.Send(Make(a, b));  // before the flap: delivered
  sched.RunUntilOr([] { return false; }, Millis(150));
  net.Send(Make(a, b));  // during: dropped as link-down
  sched.RunUntilOr([] { return false; }, Millis(250));
  net.Send(Make(a, b));  // after: delivered again
  sched.RunUntilIdle();

  EXPECT_EQ(arrivals, 2);
  EXPECT_EQ(net.dropped_link_down(), 1u);
}

TEST_F(ChaosNetworkTest, ScheduledCrashInvokesHandler) {
  CoreId crashed;
  net.SetCrashHandler([&](CoreId id) { crashed = id; });
  FaultPlan plan;
  plan.crashes.push_back(FaultPlan::CoreCrash{b, Millis(50)});
  net.SetFaultPlan(plan);
  sched.RunUntilIdle();
  EXPECT_EQ(crashed, b);
}

TEST_F(ChaosNetworkTest, ScheduledCrashWithRestartInvokesBothHandlers) {
  std::vector<std::string> sequence;
  net.SetCrashHandler([&](CoreId id) {
    sequence.push_back("crash:" + std::to_string(id.value));
  });
  net.SetRestartHandler([&](CoreId id) {
    sequence.push_back("restart:" + std::to_string(id.value));
  });
  FaultPlan plan;
  plan.crashes.push_back(
      FaultPlan::CoreCrash{b, Millis(50), /*restart_after=*/Millis(30)});
  net.SetFaultPlan(plan);
  sched.RunUntilOr([] { return false; }, Millis(70));
  EXPECT_EQ(sequence, (std::vector<std::string>{
                          "crash:" + std::to_string(b.value)}));
  sched.RunUntilIdle();
  EXPECT_EQ(sequence, (std::vector<std::string>{
                          "crash:" + std::to_string(b.value),
                          "restart:" + std::to_string(b.value)}));
}

TEST_F(ChaosNetworkTest, CrashWithoutRestartAfterNeverRestarts) {
  int restarts = 0;
  net.SetCrashHandler([](CoreId) {});
  net.SetRestartHandler([&](CoreId) { ++restarts; });
  FaultPlan plan;
  plan.crashes.push_back(FaultPlan::CoreCrash{b, Millis(50)});
  net.SetFaultPlan(plan);
  sched.RunUntilIdle();
  EXPECT_EQ(restarts, 0);
}

TEST_F(ChaosNetworkTest, ScheduledCrashWithoutHandlerUnregisters) {
  int arrivals = 0;
  net.Register(b, [&](Message) { ++arrivals; });
  FaultPlan plan;
  plan.crashes.push_back(FaultPlan::CoreCrash{b, Millis(50)});
  net.SetFaultPlan(plan);
  sched.RunUntilOr([] { return false; }, Millis(60));
  net.Send(Make(a, b));
  sched.RunUntilIdle();
  EXPECT_EQ(arrivals, 0);
  EXPECT_EQ(net.dropped_unregistered(), 1u);
}

TEST_F(ChaosNetworkTest, LoopbackIsImmuneToChaos) {
  int arrivals = 0;
  net.Register(a, [&](Message) { ++arrivals; });
  FaultPlan plan;
  plan.drop = 1.0;
  net.SetFaultPlan(plan);
  net.Send(Make(a, a));
  sched.RunUntilIdle();
  EXPECT_EQ(arrivals, 1);
  EXPECT_EQ(net.dropped(), 0u);
}

TEST_F(ChaosNetworkTest, ResetStatsClearsChaosCounters) {
  net.Register(b, [](Message) {});
  FaultPlan plan;
  plan.drop = 1.0;
  net.SetFaultPlan(plan);
  net.Send(Make(a, b));
  sched.RunUntilIdle();
  EXPECT_EQ(net.dropped(), 1u);
  net.ResetStats();
  EXPECT_EQ(net.dropped(), 0u);
  EXPECT_EQ(net.chaos().stats().drops, 0u);
}

}  // namespace
}  // namespace fargo::net
