#include "src/net/network.h"

#include <gtest/gtest.h>

namespace fargo::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net(sched) {
    net.SetHeaderBytes(0);  // exact byte accounting in these tests
  }

  Message Make(CoreId from, CoreId to, std::size_t bytes) {
    Message m;
    m.from = from;
    m.to = to;
    m.kind = MessageKind::kControl;
    m.payload.assign(bytes, 0);
    return m;
  }

  sim::SimScheduler sched;
  Network net;
  CoreId a{1}, b{2}, c{3};
};

TEST_F(NetworkTest, DeliveryChargesLatencyAndBandwidth) {
  net.SetLink(a, b, LinkModel{Millis(10), 1000.0, true});  // 1000 B/s
  SimTime arrival = -1;
  net.Register(b, [&](Message) { arrival = sched.Now(); });
  net.Send(Make(a, b, 500));  // 500 B / 1000 B/s = 500 ms
  sched.RunUntilIdle();
  EXPECT_EQ(arrival, Millis(10) + Millis(500));
}

TEST_F(NetworkTest, LoopbackIsFree) {
  SimTime arrival = -1;
  net.Register(a, [&](Message) { arrival = sched.Now(); });
  net.Send(Make(a, a, 100000));
  sched.RunUntilIdle();
  EXPECT_EQ(arrival, 0);
}

TEST_F(NetworkTest, HeaderBytesAreCharged) {
  net.SetHeaderBytes(64);
  net.SetLink(a, b, LinkModel{0, 64.0, true});  // 1 second per 64 bytes
  SimTime arrival = -1;
  net.Register(b, [&](Message) { arrival = sched.Now(); });
  net.Send(Make(a, b, 0));
  sched.RunUntilIdle();
  EXPECT_EQ(arrival, Seconds(1));
}

TEST_F(NetworkTest, PartitionDropsMessages) {
  bool delivered = false;
  net.Register(b, [&](Message) { delivered = true; });
  net.SetPartitioned(a, b, true);
  net.Send(Make(a, b, 10));
  sched.RunUntilIdle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped(), 1u);

  net.SetPartitioned(a, b, false);
  net.Send(Make(a, b, 10));
  sched.RunUntilIdle();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, UnregisteredDestinationDropsOnArrival) {
  net.Send(Make(a, c, 10));
  sched.RunUntilIdle();
  EXPECT_EQ(net.dropped(), 1u);
}

TEST_F(NetworkTest, StatsAccumulatePerDirectedPair) {
  net.Register(b, [](Message) {});
  net.Register(a, [](Message) {});
  net.Send(Make(a, b, 100));
  net.Send(Make(a, b, 50));
  net.Send(Make(b, a, 25));
  sched.RunUntilIdle();
  EXPECT_EQ(net.StatsBetween(a, b).messages, 2u);
  EXPECT_EQ(net.StatsBetween(a, b).bytes, 150u);
  EXPECT_EQ(net.StatsBetween(b, a).bytes, 25u);
  EXPECT_EQ(net.total_messages(), 3u);
  net.ResetStats();
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST_F(NetworkTest, AsymmetricLinks) {
  net.SetLinkOneWay(a, b, LinkModel{Millis(1), 1e9, true});
  net.SetLinkOneWay(b, a, LinkModel{Millis(100), 1e9, true});
  EXPECT_EQ(net.GetLink(a, b).latency, Millis(1));
  EXPECT_EQ(net.GetLink(b, a).latency, Millis(100));
}

TEST_F(NetworkTest, DefaultLinkAppliesToUnknownPairs) {
  net.SetDefaultLink(LinkModel{Millis(42), 5.0, true});
  EXPECT_EQ(net.GetLink(a, c).latency, Millis(42));
}

TEST_F(NetworkTest, LinkModelChangesMidRun) {
  net.Register(b, [](Message) {});
  net.SetLink(a, b, LinkModel{Millis(1), 1e12, true});
  net.Send(Make(a, b, 10));
  sched.RunUntilIdle();
  const SimTime first = sched.Now();
  // Degrade the link; next message is much slower.
  net.SetLink(a, b, LinkModel{Millis(200), 1e12, true});
  net.Send(Make(a, b, 10));
  sched.RunUntilIdle();
  EXPECT_EQ(sched.Now() - first, Millis(200));
}

TEST_F(NetworkTest, InFlightMessagesKeepTheirCost) {
  // A message already sent is unaffected by later link changes.
  net.Register(b, [](Message) {});
  net.SetLink(a, b, LinkModel{Millis(10), 1e12, true});
  net.Send(Make(a, b, 10));
  net.SetLink(a, b, LinkModel{Seconds(100), 1e12, true});
  sched.RunUntilIdle();
  EXPECT_EQ(sched.Now(), Millis(10));
}

}  // namespace
}  // namespace fargo::net
