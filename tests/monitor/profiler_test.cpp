// Profiling services (§4.1): instant vs continuous interfaces, result
// caching, EMA behaviour, refcounted start/stop, rate measurement.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using monitor::BandwidthProbe;
using monitor::ComletLoadProbe;
using monitor::ComletSizeProbe;
using monitor::Ema;
using monitor::InvocationRateProbe;
using monitor::LatencyProbe;
using monitor::MemoryUseProbe;
using monitor::ProbeKey;
using monitor::Service;
using monitor::ThroughputProbe;

class ProfilerTest : public FargoTest {};

TEST(EmaTest, ConvergesToConstantInput) {
  Ema ema(0.25);
  EXPECT_EQ(ema.value(), 0.0);
  for (int i = 0; i < 50; ++i) ema.Add(10.0);
  EXPECT_NEAR(ema.value(), 10.0, 1e-9);
}

TEST(EmaTest, FirstSampleSeedsDirectly) {
  Ema ema(0.1);
  ema.Add(42.0);
  EXPECT_DOUBLE_EQ(ema.value(), 42.0);
}

TEST(EmaTest, ResetClearsSeedAndSamples) {
  Ema ema(0.5);
  ema.Add(10);
  ema.Add(20);
  EXPECT_EQ(ema.samples(), 2u);
  ema.Reset();
  EXPECT_FALSE(ema.seeded());
  EXPECT_EQ(ema.value(), 0.0);
  EXPECT_EQ(ema.samples(), 0u);
  ema.Add(7);
  EXPECT_DOUBLE_EQ(ema.value(), 7.0);  // seeds fresh
}

TEST(EmaTest, HigherAlphaTracksFaster) {
  Ema slow(0.1), fast(0.9);
  slow.Add(0);
  fast.Add(0);
  for (int i = 0; i < 3; ++i) {
    slow.Add(100);
    fast.Add(100);
  }
  EXPECT_GT(fast.value(), slow.value());
}

TEST_F(ProfilerTest, ComletLoadCountsHostedComplets) {
  auto cores = MakeCores(1);
  EXPECT_EQ(cores[0]->profiler().Instant(ComletLoadProbe()), 0.0);
  cores[0]->New<Message>("a");
  cores[0]->New<Message>("b");
  // Within the cache TTL the old value is served; step past it.
  rt.RunFor(Millis(100));
  EXPECT_EQ(cores[0]->profiler().Instant(ComletLoadProbe()), 2.0);
}

TEST_F(ProfilerTest, InstantCachingServesRepeatsWithoutReevaluation) {
  auto cores = MakeCores(1);
  cores[0]->New<Data>(std::size_t{100});
  monitor::Profiler& prof = cores[0]->profiler();
  prof.SetCacheTtl(Millis(50));
  const auto evals0 = prof.evaluations();
  prof.Instant(MemoryUseProbe());
  for (int i = 0; i < 100; ++i) prof.Instant(MemoryUseProbe());
  EXPECT_EQ(prof.evaluations(), evals0 + 1);  // one real measurement
  rt.RunFor(Millis(60));                      // TTL expires
  prof.Instant(MemoryUseProbe());
  EXPECT_EQ(prof.evaluations(), evals0 + 2);
}

TEST_F(ProfilerTest, ComletSizeReflectsPayload) {
  auto cores = MakeCores(1);
  auto small = cores[0]->New<Data>(std::size_t{100});
  auto large = cores[0]->New<Data>(std::size_t{10000});
  const double s = cores[0]->profiler().Instant(ComletSizeProbe(small.target()));
  const double l = cores[0]->profiler().Instant(ComletSizeProbe(large.target()));
  EXPECT_GT(s, 100);
  EXPECT_GT(l, 10000);
  EXPECT_GT(l, s + 9000);
}

TEST_F(ProfilerTest, BandwidthAndLatencyReadTheLinkModel) {
  auto cores = MakeCores(2);
  rt.network().SetLink(cores[0]->id(), cores[1]->id(),
                       net::LinkModel{Millis(30), 5e6, true});
  EXPECT_DOUBLE_EQ(
      cores[0]->profiler().Instant(BandwidthProbe(cores[1]->id())), 5e6);
  EXPECT_DOUBLE_EQ(cores[0]->profiler().Instant(LatencyProbe(cores[1]->id())),
                   0.030);
}

TEST_F(ProfilerTest, ContinuousRequiresStart) {
  auto cores = MakeCores(1);
  EXPECT_THROW(cores[0]->profiler().Get(ComletLoadProbe()), FargoError);
}

TEST_F(ProfilerTest, ContinuousGaugeConverges) {
  auto cores = MakeCores(1);
  for (int i = 0; i < 5; ++i) cores[0]->New<Message>("x");
  monitor::Profiler& prof = cores[0]->profiler();
  prof.Start(ComletLoadProbe(), Millis(10));
  rt.RunFor(Millis(500));
  EXPECT_NEAR(prof.Get(ComletLoadProbe()), 5.0, 0.01);
  prof.Stop(ComletLoadProbe());
}

TEST_F(ProfilerTest, StartStopIsRefcounted) {
  auto cores = MakeCores(1);
  monitor::Profiler& prof = cores[0]->profiler();
  prof.Start(ComletLoadProbe(), Millis(10));
  prof.Start(ComletLoadProbe(), Millis(10));  // second interested party
  prof.Stop(ComletLoadProbe());
  EXPECT_TRUE(prof.Running(ComletLoadProbe()));  // one party remains
  prof.Stop(ComletLoadProbe());
  EXPECT_FALSE(prof.Running(ComletLoadProbe()));
}

TEST_F(ProfilerTest, StoppingEndsSampling) {
  auto cores = MakeCores(1);
  monitor::Profiler& prof = cores[0]->profiler();
  prof.Start(ComletLoadProbe(), Millis(10));
  rt.RunFor(Millis(100));
  const auto evals = prof.evaluations();
  prof.Stop(ComletLoadProbe());
  rt.RunFor(Millis(100));
  EXPECT_EQ(prof.evaluations(), evals);  // no more samples
}

TEST_F(ProfilerTest, InvocationRateMeasuresCallsPerSecond) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  auto worker = cores[0]->New<Worker>();
  auto data = cores[0]->New<Data>(std::size_t{10});
  worker.Call("bind", {Value(data.handle())});
  (void)counter;

  monitor::Profiler& prof = cores[0]->profiler();
  const ProbeKey rate = InvocationRateProbe(worker.target(), data.target());
  prof.Start(rate, Millis(100));

  // Drive ~20 invocations/second for 2 seconds: one "work" every 50 ms.
  for (int i = 0; i < 40; ++i) {
    worker.Call("work");
    rt.RunFor(Millis(50));
  }
  EXPECT_NEAR(prof.Get(rate), 20.0, 4.0);
  prof.Stop(rate);
}

TEST_F(ProfilerTest, ThroughputSeesTraffic) {
  auto cores = MakeCores(2, Millis(1), 1e9);
  auto data = cores[0]->New<Data>(std::size_t{1000});
  auto remote = cores[1]->RefTo<Data>(data.handle());
  monitor::Profiler& prof = cores[1]->profiler();
  prof.Start(ThroughputProbe(cores[0]->id()), Millis(100));
  for (int i = 0; i < 20; ++i) {
    remote.Call("read");
    rt.RunFor(Millis(50));
  }
  EXPECT_GT(prof.Get(ThroughputProbe(cores[0]->id())), 100.0);
  prof.Stop(ThroughputProbe(cores[0]->id()));
}

TEST_F(ProfilerTest, InstantRateIsLongRunAverage) {
  auto cores = MakeCores(1);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[0]->New<Data>(std::size_t{10});
  worker.Call("bind", {Value(data.handle())});
  // 10 calls over 1 second of simulated time.
  for (int i = 0; i < 10; ++i) {
    worker.Call("work");
    rt.RunFor(Millis(100));
  }
  const double rate = cores[0]->profiler().Instant(
      InvocationRateProbe(worker.target(), data.target()));
  EXPECT_NEAR(rate, 10.0, 1.0);
}

TEST(ProbeKeyTest, ParseServiceRoundTrips) {
  using monitor::ParseService;
  EXPECT_EQ(ParseService("completLoad"), Service::kComletLoad);
  EXPECT_EQ(ParseService("bandwidth"), Service::kBandwidth);
  EXPECT_EQ(ParseService("methodInvokeRate"), Service::kInvocationRate);
  EXPECT_THROW(ParseService("bogus"), FargoError);
}

}  // namespace
}  // namespace fargo::testing
