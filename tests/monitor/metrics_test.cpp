// Unit + concurrency tests for the metrics registry. The hammer tests run
// real std::threads against one registry, so a ThreadSanitizer build
// (-DFARGO_SANITIZE=thread, see .github/workflows/ci.yml) proves the
// instruments are data-race free.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "src/monitor/metrics.h"
#include "src/core/core.h"
#include "src/core/runtime.h"
#include "src/serial/bytes.h"
#include "tests/support/comlets.h"

namespace fargo::monitor {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Add(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(7.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketsAreUpperInclusive) {
  Histogram h({10, 20, 30});
  h.Observe(5);    // <= 10
  h.Observe(10);   // <= 10 (inclusive)
  h.Observe(11);   // <= 20
  h.Observe(30);   // <= 30
  h.Observe(100);  // +inf
  Histogram::Snapshot s = h.TakeSnapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 156.0);
  EXPECT_DOUBLE_EQ(h.mean(), 156.0 / 5.0);
}

TEST(HistogramTest, BoundsAreSortedAtConstruction) {
  Histogram h({30, 10, 20});
  EXPECT_EQ(h.bounds(), (std::vector<double>{10, 20, 30}));
}

TEST(HistogramTest, QuantileReturnsBucketBound) {
  Histogram h({1, 2, 4, 8});
  for (int i = 0; i < 50; ++i) h.Observe(1);   // p<=0.5 in first bucket
  for (int i = 0; i < 49; ++i) h.Observe(3);   // bucket le=4
  h.Observe(100);                              // +inf bucket
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 4.0);
  // Quantiles in the +inf bucket clamp to the largest finite bound.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 8.0);
  Histogram empty({1, 2});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h({5});
  h.Observe(1);
  h.Observe(10);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  Histogram::Snapshot s = h.TakeSnapshot();
  EXPECT_EQ(s.counts[0] + s.counts[1], 0u);
}

TEST(RegistryTest, InstrumentsAreCreatedOnceAndStable) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.Inc();
  EXPECT_EQ(reg.CounterValue("x"), 1u);
  EXPECT_EQ(reg.CounterValue("missing"), 0u);

  Histogram& h1 = reg.histogram("lat", {1, 2, 3});
  Histogram& h2 = reg.histogram("lat", {9});  // bounds ignored: same instrument
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 3u);
}

TEST(RegistryTest, DumpIsSortedAndSparse) {
  Registry reg;
  reg.counter("b.count").Inc(2);
  reg.counter("a.count").Inc(1);
  reg.gauge("load").Set(0.5);
  Histogram& h = reg.histogram("lat", {10, 20});
  h.Observe(5);
  h.Observe(100);

  std::ostringstream os;
  reg.Dump(os);
  const std::string dump = os.str();
  // Counters appear in name order.
  EXPECT_LT(dump.find("counter a.count 1"), dump.find("counter b.count 2"));
  EXPECT_NE(dump.find("gauge load 0.5"), std::string::npos);
  EXPECT_NE(dump.find("histogram lat count=2"), std::string::npos);
  // Sparse buckets: the empty le=20 bucket is omitted, +inf is present.
  EXPECT_NE(dump.find("le=10 1"), std::string::npos);
  EXPECT_EQ(dump.find("le=20"), std::string::npos);
  EXPECT_NE(dump.find("le=+inf 1"), std::string::npos);
}

TEST(RegistryTest, ResetZeroesAllInstruments) {
  Registry reg;
  reg.counter("c").Inc(5);
  reg.gauge("g").Set(1.0);
  reg.histogram("h", {1}).Observe(0.5);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("c"), 0u);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("g"), 0.0);
  EXPECT_EQ(reg.HistogramSnapshot("h").count, 0u);
}

TEST(RegistryTest, DefaultBoundsAreSortedAndNonEmpty) {
  for (const auto& bounds : {Registry::LatencyBounds(), Registry::CountBounds(),
                             Registry::SizeBounds()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i)
      EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ---- concurrency (the TSan targets) ----------------------------------------

TEST(RegistryConcurrencyTest, ParallelRecordingIsRaceFreeAndExact) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  // Resolve before spawning, like Core does at construction.
  Counter& hits = reg.counter("hits");
  Histogram& lat = reg.histogram("lat", Registry::CountBounds());
  Gauge& load = reg.gauge("load");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.Inc();
        lat.Observe(static_cast<double>(i % 70));
        load.Add(1.0);
      }
      (void)t;
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(hits.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(lat.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(load.value(), static_cast<double>(kThreads) * kPerThread);
  Histogram::Snapshot s = lat.TakeSnapshot();
  std::uint64_t total = 0;
  for (std::uint64_t c : s.counts) total += c;
  EXPECT_EQ(total, lat.count());
}

TEST(RegistryConcurrencyTest, ParallelRegistrationAndDumpIsRaceFree) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        // Half the names collide across threads, half are unique.
        reg.counter("shared." + std::to_string(i % 10)).Inc();
        reg.histogram("h." + std::to_string(t), {1, 2, 3}).Observe(i);
        if (i % 50 == 0) {
          std::ostringstream os;
          reg.Dump(os);  // concurrent dump must not tear
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::uint64_t shared = 0;
  for (int i = 0; i < 10; ++i)
    shared += reg.CounterValue("shared." + std::to_string(i));
  EXPECT_EQ(shared, static_cast<std::uint64_t>(kThreads) * 200);
}

// ==== serializer allocation accounting =======================================
//
// The perf gate (tools/benchgate) pins `alloc.count` exactly, which only
// works because the Writer's growth policy makes allocations a pure
// function of the byte sequence written. These tests pin that function.

/// Writer buffer stats delta across `fn`.
serial::BufferStats StatsOf(void (*fn)(serial::Writer&)) {
  const serial::BufferStats before = serial::GetBufferStats();
  serial::Writer w;
  fn(w);
  const serial::BufferStats after = serial::GetBufferStats();
  return {after.allocations - before.allocations,
          after.bytes_copied - before.bytes_copied};
}

TEST(SerialAllocTest, ReservedEncodeIsExactlyOneAllocation) {
  const serial::BufferStats d = StatsOf(+[](serial::Writer& w) {
    w.Reserve(100);
    for (int i = 0; i < 100; ++i) w.WriteU8(7);
  });
  EXPECT_EQ(d.allocations, 1u);
  EXPECT_EQ(d.bytes_copied, 0u);
}

TEST(SerialAllocTest, UnreservedGrowthDoublesFromMinCapacity) {
  // First write allocates the 64-byte floor; crossing 64 doubles to 128 and
  // relocates the 64 live bytes. Exact on every compiler — the Writer, not
  // std::vector, decides capacities.
  const serial::BufferStats d = StatsOf(+[](serial::Writer& w) {
    for (int i = 0; i < 65; ++i) w.WriteU8(1);
  });
  EXPECT_EQ(d.allocations, 2u);
  EXPECT_EQ(d.bytes_copied, 64u);
}

TEST(SerialAllocTest, ReserveIsIdempotentWhenCapacitySuffices) {
  const serial::BufferStats d = StatsOf(+[](serial::Writer& w) {
    w.Reserve(50);
    w.Reserve(40);  // fits: no second allocation
    for (int i = 0; i < 50; ++i) w.WriteU8(2);
  });
  EXPECT_EQ(d.allocations, 1u);
  EXPECT_EQ(d.bytes_copied, 0u);
}

TEST(SerialAllocTest, RuntimeSyncFoldsDeltasExactlyOnce) {
  core::Runtime rt;
  rt.SyncSerialStats();  // drain anything earlier tests produced
  const std::uint64_t alloc0 = rt.metrics().CounterValue("alloc.count");
  const std::uint64_t copied0 = rt.metrics().CounterValue("net.bytes_copied");
  {
    serial::Writer w;
    for (int i = 0; i < 65; ++i) w.WriteU8(3);  // 2 allocs, 64 copied
  }
  rt.SyncSerialStats();
  EXPECT_EQ(rt.metrics().CounterValue("alloc.count") - alloc0, 2u);
  EXPECT_EQ(rt.metrics().CounterValue("net.bytes_copied") - copied0, 64u);
  // A second sync with no serial activity must not double-count.
  rt.SyncSerialStats();
  EXPECT_EQ(rt.metrics().CounterValue("alloc.count") - alloc0, 2u);
  EXPECT_EQ(rt.metrics().CounterValue("net.bytes_copied") - copied0, 64u);
}

TEST(SerialAllocTest, ScriptedRpcScenarioIsAllocDeterministic) {
  // The property the bench gate stands on: the same scripted scenario
  // performs the identical number of serializer allocations every run.
  auto run_scenario = [] {
    fargo::testing::RegisterTestComlets();
    core::Runtime rt;
    core::Core& a = rt.CreateCore("a");
    core::Core& b = rt.CreateCore("b");
    auto counter = a.New<fargo::testing::Counter>();
    auto stub = b.RefTo<fargo::testing::Counter>(counter.handle());
    for (int i = 0; i < 10; ++i) stub.Invoke<std::int64_t>("increment");
    rt.RunUntilIdle();
    rt.SyncSerialStats();
    return std::pair{rt.metrics().CounterValue("alloc.count"),
                     rt.metrics().CounterValue("net.bytes_copied")};
  };
  const auto first = run_scenario();
  const auto second = run_scenario();
  EXPECT_GT(first.first, 0u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace fargo::monitor
