// Monitoring edge cases: alpha tuning, cache control, remote-subject
// probes, event bus bookkeeping.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using monitor::ComletLoadProbe;
using monitor::ComletSizeProbe;
using monitor::EventKind;
using monitor::Trigger;

class MonitorMiscTest : public FargoTest {};

TEST_F(MonitorMiscTest, AlphaControlsTrackingSpeed) {
  auto cores = MakeCores(2);
  // Two cores so each profiler is independent; same step signal.
  monitor::Profiler& fast = cores[0]->profiler();
  monitor::Profiler& slow = cores[1]->profiler();
  fast.SetAlpha(0.9);
  slow.SetAlpha(0.05);
  fast.Start(ComletLoadProbe(), Millis(10));
  slow.Start(ComletLoadProbe(), Millis(10));
  rt.RunFor(Millis(100));  // both settle at 0
  std::vector<core::ComletRef<Message>> kept;
  for (int i = 0; i < 10; ++i) {
    kept.push_back(cores[0]->New<Message>("x"));
    kept.push_back(cores[1]->New<Message>("x"));
  }
  rt.RunFor(Millis(50));  // a few samples after the step
  EXPECT_GT(fast.Get(ComletLoadProbe()), slow.Get(ComletLoadProbe()));
}

TEST_F(MonitorMiscTest, ComletSizeOfUnhostedCompletIsZero) {
  auto cores = MakeCores(2);
  auto data = cores[0]->New<Data>(std::size_t{1000});
  // Asked at the WRONG core (not hosting): instant reports 0.
  EXPECT_EQ(cores[1]->profiler().Instant(ComletSizeProbe(data.target())), 0.0);
  EXPECT_GT(cores[0]->profiler().Instant(ComletSizeProbe(data.target())),
            1000.0);
}

TEST_F(MonitorMiscTest, CacheTtlZeroDisablesCachingAcrossTime) {
  auto cores = MakeCores(1);
  monitor::Profiler& prof = cores[0]->profiler();
  prof.SetCacheTtl(0);
  const auto evals0 = prof.evaluations();
  prof.Instant(ComletLoadProbe());
  rt.RunFor(Millis(1));
  prof.Instant(ComletLoadProbe());
  EXPECT_EQ(prof.evaluations(), evals0 + 2);
}

TEST_F(MonitorMiscTest, ThresholdOnStoppedProbeStopsFiring) {
  auto cores = MakeCores(1);
  int fires = 0;
  monitor::SubId sub = cores[0]->events().ListenThreshold(
      ComletLoadProbe(), 0.5, Trigger::kAbove, Millis(10),
      [&](const monitor::Event&) { ++fires; });
  cores[0]->New<Message>("m");
  rt.RunFor(Millis(100));
  EXPECT_EQ(fires, 1);
  cores[0]->events().Unlisten(sub);
  EXPECT_FALSE(cores[0]->profiler().Running(ComletLoadProbe()));
}

TEST_F(MonitorMiscTest, UnlistenUnknownIdIsHarmless) {
  auto cores = MakeCores(1);
  cores[0]->events().Unlisten(123456);
  SUCCEED();
}

TEST_F(MonitorMiscTest, TwoThresholdsOneProbeIndependentArming) {
  auto cores = MakeCores(2);
  int low_fires = 0, high_fires = 0;
  cores[0]->events().ListenThreshold(ComletLoadProbe(), 0.5, Trigger::kAbove,
                                     Millis(10),
                                     [&](const monitor::Event&) { ++low_fires; });
  cores[0]->events().ListenThreshold(ComletLoadProbe(), 2.5, Trigger::kAbove,
                                     Millis(10),
                                     [&](const monitor::Event&) { ++high_fires; });
  auto a = cores[0]->New<Message>("a");
  rt.RunFor(Millis(100));
  EXPECT_EQ(low_fires, 1);   // load 1 > 0.5
  EXPECT_EQ(high_fires, 0);  // load 1 < 2.5
  auto b = cores[0]->New<Message>("b");
  auto c = cores[0]->New<Message>("c");
  rt.RunFor(Millis(100));
  EXPECT_EQ(low_fires, 1);   // still armed-off (never dropped below)
  EXPECT_EQ(high_fires, 1);  // crossed its own threshold once
}

TEST_F(MonitorMiscTest, ListenerCountTracksSubscriptions) {
  auto cores = MakeCores(1);
  monitor::EventBus& bus = cores[0]->events();
  const std::size_t base = bus.listener_count();
  monitor::SubId a = bus.Listen(EventKind::kComletArrived,
                                [](const monitor::Event&) {});
  monitor::SubId b = bus.ListenThreshold(ComletLoadProbe(), 1, Trigger::kAbove,
                                         Millis(10),
                                         [](const monitor::Event&) {});
  EXPECT_EQ(bus.listener_count(), base + 2);
  bus.Unlisten(a);
  bus.Unlisten(b);
  EXPECT_EQ(bus.listener_count(), base);
}

TEST_F(MonitorMiscTest, RemoteRegistrationSurvivesListenerChurn) {
  auto cores = MakeCores(2);
  std::vector<monitor::SubId> tokens;
  int fires = 0;
  for (int i = 0; i < 10; ++i)
    tokens.push_back(cores[0]->ListenAt(cores[1]->id(),
                                        EventKind::kComletArrived,
                                        [&](const monitor::Event&) { ++fires; }));
  for (std::size_t i = 0; i < 5; ++i) cores[0]->UnlistenAt(tokens[i]);
  rt.RunUntilIdle();
  cores[1]->New<Message>("m");
  rt.RunUntilIdle();
  EXPECT_EQ(fires, 5);
}

}  // namespace
}  // namespace fargo::testing
