// Tracer/TraceBuffer unit tests plus the trace invariants the subsystem
// guarantees end-to-end: every span belongs to a trace with exactly one
// root, retries and forwarding hops chain causally to that root, span
// accounting matches the invocation structure (1 root + hops + retries on
// the origin/forwarder side, one exec at the host), and nothing is left
// open after quiescence — including under seeded chaos.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <sstream>

#include "src/core/heartbeat.h"
#include "tests/support/fixture.h"
#include "tests/support/json_lite.h"

namespace fargo::testing {
namespace {

using monitor::Span;
using monitor::SpanKind;
using monitor::SpanOutcome;
using monitor::TraceBuffer;
using monitor::Tracer;
using core::wire::TraceContext;

// ---- TraceBuffer ------------------------------------------------------------

TEST(TraceBufferTest, TokensStayAddressableUntilEvicted) {
  TraceBuffer buf(4);
  std::vector<std::uint64_t> tokens;
  for (int i = 0; i < 6; ++i) {
    Span s;
    s.trace_id = static_cast<std::uint64_t>(i) + 1;
    tokens.push_back(buf.Add(s));
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total_added(), 6u);
  EXPECT_EQ(buf.evicted(), 2u);
  // The two oldest wrapped out of the ring.
  EXPECT_EQ(buf.Find(tokens[0]), nullptr);
  EXPECT_EQ(buf.Find(tokens[1]), nullptr);
  for (int i = 2; i < 6; ++i) {
    Span* s = buf.Find(tokens[static_cast<std::size_t>(i)]);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->trace_id, static_cast<std::uint64_t>(i) + 1);
  }
  EXPECT_EQ(buf.Find(0), nullptr);  // token 0 = "no span"

  // Snapshot is oldest-to-newest of the live contents.
  std::vector<Span> snap = buf.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].token, snap[i].token);
  EXPECT_EQ(snap.front().trace_id, 3u);
  EXPECT_EQ(snap.back().trace_id, 6u);
}

TEST(TraceBufferTest, ResetDropsContentsAndCanResize) {
  TraceBuffer buf(4);
  for (int i = 0; i < 3; ++i) buf.Add(Span{});
  buf.Reset();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 4u);
  buf.Reset(16);
  EXPECT_EQ(buf.capacity(), 16u);
  EXPECT_TRUE(buf.Snapshot().empty());
}

// ---- Tracer -----------------------------------------------------------------

TEST(TracerTest, DisabledTracerPassesContextsThroughUntouched) {
  Tracer t(CoreId{3});
  EXPECT_FALSE(t.enabled());
  const TraceContext parent{77, 5, 2, 1};
  Tracer::Opened o = t.OpenSpan(SpanKind::kExec, "m", parent, Millis(1));
  EXPECT_EQ(o.token, 0u);
  EXPECT_EQ(o.ctx, parent);  // continuity across non-tracing Cores
  t.CloseSpan(o.token, Millis(2), SpanOutcome::kOk);
  EXPECT_EQ(t.buffer().size(), 0u);
  EXPECT_EQ(t.traces_started(), 0u);
}

TEST(TracerTest, InvalidParentMintsFreshTraceRootedAtZero) {
  Tracer t(CoreId{3});
  t.SetEnabled(true);
  Tracer::Opened root =
      t.OpenSpan(SpanKind::kRoot, "increment", TraceContext{}, Millis(1));
  ASSERT_NE(root.token, 0u);
  EXPECT_TRUE(root.ctx.valid());
  EXPECT_EQ(root.ctx.parent_span, 0u);
  EXPECT_EQ(t.traces_started(), 1u);
  // Ids are deterministic and carry the minting core in the high bits.
  EXPECT_EQ(root.ctx.trace_id >> 40, 3u);
  EXPECT_EQ(root.ctx.span_id >> 40, 3u);

  Tracer::Opened child =
      t.OpenSpan(SpanKind::kExec, "increment", root.ctx, Millis(2));
  EXPECT_EQ(child.ctx.trace_id, root.ctx.trace_id);  // same trace
  EXPECT_EQ(child.ctx.parent_span, root.ctx.span_id);
  EXPECT_NE(child.ctx.span_id, root.ctx.span_id);
  EXPECT_EQ(t.traces_started(), 1u);  // no new trace for the child

  t.CloseSpan(child.token, Millis(3), SpanOutcome::kOk, 2, 99);
  Span* s = t.buffer().Find(child.token);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->outcome, SpanOutcome::kOk);
  EXPECT_EQ(s->hops, 2);
  EXPECT_EQ(s->bytes, 99u);
  EXPECT_EQ(s->end, Millis(3));
  // The root was never closed: still pending.
  EXPECT_EQ(t.buffer().Find(root.token)->outcome, SpanOutcome::kPending);
}

TEST(TracerTest, CloseAfterEvictionIsANoop) {
  Tracer t(CoreId{1}, /*capacity=*/2);
  t.SetEnabled(true);
  Tracer::Opened old = t.OpenSpan(SpanKind::kRoot, "a", {}, 0);
  t.RecordInstant(SpanKind::kControl, "b", {}, 1);
  t.RecordInstant(SpanKind::kControl, "c", {}, 2);  // wraps onto `old`
  EXPECT_EQ(t.buffer().Find(old.token), nullptr);
  t.CloseSpan(old.token, 3, SpanOutcome::kOk);  // must not touch the new slot
  EXPECT_EQ(t.buffer().Snapshot().back().name_view(), "c");
}

TEST(TracerTest, LongNamesAreClamped) {
  Tracer t(CoreId{1});
  t.SetEnabled(true);
  const std::string longname(80, 'x');
  Tracer::Opened o = t.OpenSpan(SpanKind::kRoot, longname, {}, 0);
  const Span* s = t.buffer().Find(o.token);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name_view(), std::string(31, 'x'));
}

TEST(TracerTest, AmbientContextStackNests) {
  Tracer t(CoreId{1});
  EXPECT_FALSE(t.Current().valid());  // empty stack = no ambient trace
  const TraceContext outer{1, 2, 0, 0}, inner{1, 3, 2, 0};
  t.Push(outer);
  EXPECT_EQ(t.Current(), outer);
  {
    monitor::TraceScope scope(t, inner);
    EXPECT_EQ(t.Current(), inner);
  }
  EXPECT_EQ(t.Current(), outer);
  t.Pop();
  EXPECT_FALSE(t.Current().valid());
}

// ---- end-to-end invariants --------------------------------------------------

std::vector<Span> AllSpans(core::Runtime& rt) {
  std::vector<Span> all;
  for (core::Core* c : rt.Cores()) {
    std::vector<Span> snap = c->tracer().buffer().Snapshot();
    all.insert(all.end(), snap.begin(), snap.end());
  }
  return all;
}

std::map<std::uint64_t, std::vector<Span>> ByTrace(
    const std::vector<Span>& spans) {
  std::map<std::uint64_t, std::vector<Span>> traces;
  for (const Span& s : spans) traces[s.trace_id].push_back(s);
  return traces;
}

int CountKind(const std::vector<Span>& spans, SpanKind k) {
  int n = 0;
  for (const Span& s : spans) n += s.kind == k ? 1 : 0;
  return n;
}

/// Core invariant: within every trace there is exactly one root span
/// (parent_span == 0) and every other span's parent resolves to a recorded
/// span of the same trace (no orphans). Requires no ring eviction.
void AssertWellFormedTraces(
    const std::map<std::uint64_t, std::vector<Span>>& traces) {
  for (const auto& [trace_id, spans] : traces) {
    int roots = 0;
    std::map<std::uint64_t, const Span*> by_span;
    for (const Span& s : spans) {
      roots += s.parent_span == 0 ? 1 : 0;
      by_span[s.span_id] = &s;
    }
    EXPECT_EQ(roots, 1) << "trace " << trace_id << " has " << roots
                        << " roots across " << spans.size() << " spans";
    for (const Span& s : spans) {
      if (s.parent_span == 0) continue;
      EXPECT_TRUE(by_span.contains(s.parent_span))
          << "orphan span " << s.span_id << " (kind "
          << monitor::ToString(s.kind) << ") in trace " << trace_id;
    }
  }
}

class TraceInvariantTest : public FargoTest {};

TEST_F(TraceInvariantTest, DirectInvocationRecordsRootAndExec) {
  auto cores = MakeCores(2);
  rt.SetTracing(true);
  auto counter = cores[0]->New<Counter>();
  auto stub = cores[1]->RefTo<Counter>(counter.handle());
  stub.Invoke<std::int64_t>("increment");

  auto traces = ByTrace(AllSpans(rt));
  ASSERT_EQ(traces.size(), 1u);
  const std::vector<Span>& spans = traces.begin()->second;
  // Direct route: exactly 1 root + 0 hops + 0 retries on the origin side,
  // one exec at the host — nothing else.
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(CountKind(spans, SpanKind::kRoot), 1);
  EXPECT_EQ(CountKind(spans, SpanKind::kExec), 1);
  for (const Span& s : spans) {
    EXPECT_EQ(s.outcome, SpanOutcome::kOk);
    EXPECT_EQ(s.hops, 1);  // one network leg, no forwarders
    EXPECT_EQ(s.name_view(), "increment");
    if (s.kind == SpanKind::kRoot)
      EXPECT_EQ(s.core, cores[1]->id());
    else
      EXPECT_EQ(s.core, cores[0]->id());
  }
  AssertWellFormedTraces(traces);
}

TEST_F(TraceInvariantTest, ForwardingHopsChainCausallyToTheRoot) {
  auto cores = MakeCores(3);
  rt.SetTracing(true);
  auto counter = cores[0]->New<Counter>();
  auto stub = cores[2]->RefTo<Counter>(counter.handle());
  cores[0]->Move(counter, cores[1]->id());
  rt.RunUntilIdle();
  cores[2]->tracer().buffer().Reset();  // isolate the invocation's trace
  cores[0]->tracer().buffer().Reset();
  cores[1]->tracer().buffer().Reset();

  stub.Invoke<std::int64_t>("increment");  // routes 2 -> 0 -(fwd)-> 1

  auto traces = ByTrace(AllSpans(rt));
  // The invocation trace, plus control traces for the chain-shortening
  // tracker updates the exec core fanned out afterwards.
  const Span* root = nullptr;
  const Span* hop = nullptr;
  const Span* exec = nullptr;
  for (const auto& [id, spans] : traces)
    for (const Span& s : spans) {
      if (s.kind == SpanKind::kRoot) root = &s;
      if (s.kind == SpanKind::kHop) hop = &s;
      if (s.kind == SpanKind::kExec) exec = &s;
    }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(hop, nullptr);
  ASSERT_NE(exec, nullptr);
  // One forwarding hop, recorded at the stale core, re-parented so the
  // causal chain mirrors the tracker chain: root <- hop <- exec. Delivery
  // took two network legs (origin -> stale core -> host).
  EXPECT_EQ(root->hops, 2);
  EXPECT_EQ(root->core, cores[2]->id());
  EXPECT_EQ(hop->core, cores[0]->id());
  EXPECT_EQ(exec->core, cores[1]->id());
  EXPECT_EQ(hop->trace_id, root->trace_id);
  EXPECT_EQ(exec->trace_id, root->trace_id);
  EXPECT_EQ(hop->parent_span, root->span_id);
  EXPECT_EQ(exec->parent_span, hop->span_id);
  AssertWellFormedTraces(traces);
}

TEST_F(TraceInvariantTest, ChainShorteningShowsUpInTheHopHistogram) {
  // Satellite regression: drag the complet across a 4-core chain, then
  // observe the hop-count histogram collapse after one round trip.
  auto cores = MakeCores(5);
  rt.SetTracing(true);
  auto counter = cores[0]->New<Counter>();
  for (std::size_t i = 1; i <= 3; ++i) {
    cores[i - 1]->MoveId(counter.target(), cores[i]->id());
    rt.RunUntilIdle();
  }

  auto leq1 = [&] {
    // Observations landing in buckets with bound <= 1.
    monitor::Histogram::Snapshot s = rt.metrics().HistogramSnapshot(
        "invoke.hops");
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < s.bounds.size() && s.bounds[i] <= 1.0; ++i)
      n += s.counts[i];
    return n;
  };

  auto stub = cores[4]->RefTo<Counter>(counter.handle());  // stale: at core0
  stub.Invoke<std::int64_t>("increment");  // 4 -> 0 -> 1 -> 2 -> 3
  rt.RunUntilIdle();  // deliver the chain-shortening tracker updates
  monitor::Histogram::Snapshot first =
      rt.metrics().HistogramSnapshot("invoke.hops");
  EXPECT_EQ(first.count, 1u);
  EXPECT_EQ(leq1(), 0u) << "first call should have traversed the full chain";

  stub.Invoke<std::int64_t>("increment");  // shortened: direct (or 1 hop)
  EXPECT_EQ(rt.metrics().HistogramSnapshot("invoke.hops").count, 2u);
  EXPECT_EQ(leq1(), 1u) << "post-shortening call still chained";

  // The root spans agree with the histogram.
  int long_roots = 0, short_roots = 0;
  for (const Span& s : AllSpans(rt))
    if (s.kind == SpanKind::kRoot) {
      long_roots += s.hops >= 3 ? 1 : 0;
      short_roots += s.hops <= 1 ? 1 : 0;
    }
  EXPECT_EQ(long_roots, 1);
  EXPECT_EQ(short_roots, 1);
}

TEST_F(TraceInvariantTest, HeartbeatTrafficRecordsControlSpans) {
  auto cores = MakeCores(2);
  rt.SetTracing(true);
  cores[0]->EnableHeartbeat(Millis(100), 3).Watch(cores[1]->id());
  rt.RunFor(Millis(450));
  cores[0]->DisableHeartbeat();
  rt.RunUntilIdle();

  std::vector<Span> spans = AllSpans(rt);
  int pings = 0, pongs = 0;
  for (const Span& s : spans) {
    if (s.kind != SpanKind::kControl) continue;
    if (s.name_view() == "hb_ping") ++pings;
    if (s.name_view() == "hb_pong") ++pongs;
  }
  EXPECT_GT(pings, 0);
  EXPECT_GT(pongs, 0);
  // Each pong joins the trace its ping minted.
  AssertWellFormedTraces(ByTrace(spans));
  EXPECT_EQ(rt.metrics().CounterValue("hb.pings"),
            static_cast<std::uint64_t>(pings));
}

// Seeded chaos: drops force retries, duplicates force slot replay — the causal
// structure must survive all of it, and span accounting must agree with
// the runtime's own counters exactly.
class ChaosTraceTest : public FargoTest,
                       public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(ChaosTraceTest, TraceInvariantsHoldUnderChaos) {
  const std::uint32_t seed = GetParam();
  const int kCores = 4;
  const int kOps = 400;
  auto cores = MakeCores(kCores, Millis(2), 1e7);
  rt.SetTracing(true);

  core::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = Millis(20);
  policy.seed = seed;
  for (core::Core* c : cores) {
    c->SetRpcTimeout(Millis(200));
    c->SetRetryPolicy(policy);
  }
  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.05;
  plan.duplicate = 0.02;
  plan.reorder = 0.10;
  plan.reorder_jitter = Millis(10);
  rt.network().SetFaultPlan(plan);

  auto ledger = cores[0]->New<OpLedger>();
  std::size_t model_at = 0;
  int successes = 0, failures = 0;
  std::mt19937 rng(seed);
  for (int op = 0; op < kOps; ++op) {
    if (op > 0 && op % 100 == 0) {
      const std::size_t dest = rng() % kCores;
      const std::size_t from = rng() % kCores;
      try {
        cores[from]->MoveId(ledger.target(), cores[dest]->id());
        model_at = dest;
      } catch (const FargoError&) {
        for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
          if (cores[c]->repository().Contains(ledger.target())) model_at = c;
      }
    }
    const std::size_t from = rng() % kCores;
    auto stub = cores[from]->RefTo<OpLedger>(ledger.handle());
    try {
      stub.Invoke<std::int64_t>("apply", static_cast<std::int64_t>(op));
      ++successes;
    } catch (const FargoError&) {
      ++failures;
      for (std::size_t c = 0; c < static_cast<std::size_t>(kCores); ++c)
        if (cores[c]->repository().Contains(ledger.target())) model_at = c;
      cores[from]->trackers().SetForward(ledger.target(),
                                         cores[model_at]->id(),
                                         std::string(OpLedger::kTypeName));
    }
  }
  rt.network().ClearFaults();
  rt.RunUntilIdle();  // quiescence: parked requests expired, retries drained

  // The orphan/root checks below assume nothing was evicted from a ring.
  std::uint64_t retries = 0;
  for (core::Core* c : cores) {
    ASSERT_EQ(c->tracer().buffer().evicted(), 0u);
    retries += c->rpc_retries();
  }
  ASSERT_GT(retries, 0u) << "chaos produced no retries; weak test";

  std::vector<Span> spans = AllSpans(rt);
  auto traces = ByTrace(spans);
  AssertWellFormedTraces(traces);

  // Span accounting against ground truth:
  //   every Invoke minted exactly one root span, tagged with its outcome;
  //   every resend recorded exactly one retry span;
  //   after quiescence no span is still pending.
  // Routed move commands also travel as invocations (of the system move
  // method), so scope the per-invocation accounting to the workload's own
  // method.
  int ok_roots = 0, failed_roots = 0;
  for (const Span& s : spans) {
    EXPECT_NE(s.outcome, SpanOutcome::kPending)
        << monitor::ToString(s.kind) << " span still open after quiescence";
    if (s.kind != SpanKind::kRoot || s.name_view() != "apply") continue;
    if (s.outcome == SpanOutcome::kOk)
      ++ok_roots;
    else
      ++failed_roots;
  }
  EXPECT_EQ(ok_roots, successes);
  EXPECT_EQ(failed_roots, failures);
  EXPECT_EQ(CountKind(spans, SpanKind::kRetry),
            static_cast<int>(retries));

  // Per successful invocation: one root, and at least one execution in the
  // same trace (slot replay may have served later attempts from cache). Local
  // fast-path invocations (hops == 0) dispatch inside the root span itself
  // and record no separate exec span.
  for (const auto& [trace_id, ts] : traces) {
    const Span* root = nullptr;
    for (const Span& s : ts)
      if (s.kind == SpanKind::kRoot) root = &s;
    if (root == nullptr || root->outcome != SpanOutcome::kOk) continue;
    if (root->hops >= 1) {
      EXPECT_GE(CountKind(ts, SpanKind::kExec), 1)
          << "successful invocation trace " << trace_id << " has no exec span";
    }
    // Retries chain directly under the root they re-sent for.
    for (const Span& s : ts) {
      if (s.kind == SpanKind::kRetry && s.parent_span != 0) {
        EXPECT_EQ(s.parent_span, root->span_id);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTraceTest,
                         ::testing::Values(5u, 17u, 91u));

// ---- Chrome-trace export ----------------------------------------------------

TEST(ChromeTraceTest, ExportIsValidJsonWithEscapedNames) {
  Tracer t(CoreId{2});
  t.SetEnabled(true);
  Tracer::Opened root = t.OpenSpan(SpanKind::kRoot, "we\"ird\nname", {}, 1000);
  t.CloseSpan(root.token, 5000, SpanOutcome::kOk, 2, 64);
  t.RecordInstant(SpanKind::kHop, "fwd", root.ctx, 2000);

  std::ostringstream os;
  const std::size_t n = monitor::WriteChromeTrace(
      os, {t.buffer().Snapshot()}, {{CoreId{2}, "core\\two"}});
  EXPECT_EQ(n, 2u);

  auto doc = json::Parse(os.str());  // throws on malformed JSON
  ASSERT_TRUE(doc->is_object());
  const auto& events = doc->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.items.size(), 3u);  // 1 metadata + 2 spans

  const auto& meta = *events.items[0];
  EXPECT_EQ(meta.at("ph").string(), "M");
  EXPECT_EQ(meta.at("args").at("name").string(), "core\\two");

  const auto& span = *events.items[1];
  EXPECT_EQ(span.at("ph").string(), "X");
  EXPECT_EQ(span.at("name").string(), "root:we\"ird\nname");
  EXPECT_EQ(span.at("cat").string(), "root");
  EXPECT_DOUBLE_EQ(span.at("ts").number(), 1.0);   // 1000 ns -> 1 us
  EXPECT_DOUBLE_EQ(span.at("dur").number(), 4.0);  // 4000 ns -> 4 us
  EXPECT_EQ(span.at("pid").u64(), 2u);
  EXPECT_EQ(span.at("tid").u64(), root.ctx.trace_id);
  const auto& args = span.at("args");
  EXPECT_EQ(args.at("trace").u64(), root.ctx.trace_id);
  EXPECT_EQ(args.at("span").u64(), root.ctx.span_id);
  EXPECT_EQ(args.at("parent").u64(), 0u);
  EXPECT_EQ(args.at("hops").u64(), 2u);
  EXPECT_EQ(args.at("bytes").u64(), 64u);
  EXPECT_EQ(args.at("outcome").string(), "ok");

  const auto& hop = *events.items[2];
  EXPECT_EQ(hop.at("args").at("parent").u64(), root.ctx.span_id);
  EXPECT_DOUBLE_EQ(hop.at("dur").number(), 0.0);
}

}  // namespace
}  // namespace fargo::testing
