// Monitor events (§4.2): lifecycle events, threshold events (edge
// triggering, per-listener filtering on one sampler), distributed
// listeners, complet listeners that survive migration, shutdown evacuation.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using monitor::ComletLoadProbe;
using monitor::Event;
using monitor::EventKind;
using monitor::InvocationRateProbe;
using monitor::Trigger;

class EventsTest : public FargoTest {};
// For listeners that run blocking moves/invokes inside the event handler
// (evacuation, migration churn) — sim-only by design.
class EventsSimTest : public FargoSimTest {};

TEST_F(EventsTest, ArrivalAndDepartureFireOnMovement) {
  auto cores = MakeCores(2);
  std::vector<std::string> log;
  cores[0]->events().Listen(EventKind::kComletDeparted,
                            [&](const Event& e) {
                              log.push_back("departed " + ToString(e.comlet));
                            });
  cores[1]->events().Listen(EventKind::kComletArrived,
                            [&](const Event& e) {
                              log.push_back("arrived " + ToString(e.comlet));
                            });
  auto msg = cores[0]->New<Message>("m");
  cores[0]->Move(msg, cores[1]->id());
  rt.RunUntilIdle();
  ASSERT_EQ(log.size(), 2u);
  // Notification is asynchronous; arrival fires at the destination during
  // the move, departure at the source after commit.
  EXPECT_NE(log[0].find(ToString(msg.target())), std::string::npos);
  EXPECT_NE(log[1].find(ToString(msg.target())), std::string::npos);
}

TEST_F(EventsTest, InstantiationFiresArrival) {
  auto cores = MakeCores(1);
  int arrivals = 0;
  cores[0]->events().Listen(EventKind::kComletArrived,
                            [&](const Event&) { ++arrivals; });
  cores[0]->New<Message>("a");
  cores[0]->New<Message>("b");
  rt.RunUntilIdle();
  EXPECT_EQ(arrivals, 2);
}

TEST_F(EventsTest, NotificationIsAsynchronous) {
  auto cores = MakeCores(1);
  bool notified = false;
  cores[0]->events().Listen(EventKind::kComletArrived,
                            [&](const Event&) { notified = true; });
  cores[0]->New<Message>("m");
  EXPECT_FALSE(notified);  // fired, not yet delivered
  rt.RunUntilIdle();
  EXPECT_TRUE(notified);
}

TEST_F(EventsTest, UnlistenStopsDelivery) {
  auto cores = MakeCores(1);
  int count = 0;
  monitor::SubId sub = cores[0]->events().Listen(
      EventKind::kComletArrived, [&](const Event&) { ++count; });
  cores[0]->New<Message>("a");
  rt.RunUntilIdle();
  cores[0]->events().Unlisten(sub);
  cores[0]->New<Message>("b");
  rt.RunUntilIdle();
  EXPECT_EQ(count, 1);
}

TEST_F(EventsTest, ThresholdFiresOnceAndRearms) {
  auto cores = MakeCores(2);
  int fires = 0;
  double seen = 0;
  cores[0]->events().ListenThreshold(
      ComletLoadProbe(), 2.5, Trigger::kAbove, Millis(10),
      [&](const Event& e) {
        ++fires;
        seen = e.value;
      });
  std::vector<core::ComletRef<Message>> kept;
  for (int i = 0; i < 5; ++i) kept.push_back(cores[0]->New<Message>("x"));
  rt.RunFor(Millis(500));
  EXPECT_EQ(fires, 1);  // edge-triggered: once per crossing
  EXPECT_GT(seen, 2.5);

  // Drop below the threshold (evacuate), then exceed again: re-armed.
  for (auto& ref : kept) cores[0]->MoveId(ref.target(), cores[1]->id());
  rt.RunFor(Millis(500));
  for (int i = 0; i < 5; ++i) kept.push_back(cores[0]->New<Message>("y"));
  rt.RunFor(Millis(500));
  EXPECT_EQ(fires, 2);
}

TEST_F(EventsTest, ManyListenersOneSampler) {
  // "This design allows many listeners without overloading the measurement
  // unit": N threshold listeners on the same probe share one sampler.
  auto cores = MakeCores(1);
  monitor::Profiler& prof = cores[0]->profiler();
  int fired = 0;
  for (int i = 0; i < 32; ++i) {
    cores[0]->events().ListenThreshold(ComletLoadProbe(), 0.5,
                                       Trigger::kAbove, Millis(10),
                                       [&](const Event&) { ++fired; });
  }
  EXPECT_EQ(prof.active_probes(), 1u);
  const auto evals_before = prof.evaluations();
  cores[0]->New<Message>("m");
  rt.RunFor(Millis(100));
  // ~10 samples regardless of 32 listeners.
  EXPECT_LE(prof.evaluations() - evals_before, 11u);
  EXPECT_EQ(fired, 32);  // but every listener was notified
}

TEST_F(EventsTest, BelowTriggerFiresOnDrop) {
  auto cores = MakeCores(2);
  rt.network().SetLink(cores[0]->id(), cores[1]->id(),
                       net::LinkModel{Millis(5), 1e6, true});
  int fires = 0;
  cores[0]->events().ListenThreshold(
      monitor::BandwidthProbe(cores[1]->id()), 2e5, Trigger::kBelow,
      Millis(10), [&](const Event&) { ++fires; });
  rt.RunFor(Millis(100));
  EXPECT_EQ(fires, 0);  // healthy link
  rt.network().SetLink(cores[0]->id(), cores[1]->id(),
                       net::LinkModel{Millis(5), 1e5, true});  // degrade
  rt.RunFor(Millis(200));
  EXPECT_EQ(fires, 1);
}

TEST_F(EventsTest, RemoteLifecycleListener) {
  auto cores = MakeCores(2);
  int arrivals = 0;
  // core0 listens to events fired *at core1* (distributed events).
  monitor::SubId token = cores[0]->ListenAt(
      cores[1]->id(), EventKind::kComletArrived,
      [&](const Event& e) {
        ++arrivals;
        EXPECT_EQ(e.source, cores[1]->id());
      });
  cores[1]->New<Message>("m");
  rt.RunUntilIdle();
  EXPECT_EQ(arrivals, 1);

  cores[0]->UnlistenAt(token);
  rt.RunUntilIdle();
  cores[1]->New<Message>("n");
  rt.RunUntilIdle();
  EXPECT_EQ(arrivals, 1);
}

TEST_F(EventsTest, RemoteThresholdListener) {
  auto cores = MakeCores(2);
  int fires = 0;
  cores[0]->ListenThresholdAt(cores[1]->id(), ComletLoadProbe(), 1.5,
                              Trigger::kAbove, Millis(10),
                              [&](const Event&) { ++fires; });
  cores[1]->New<Message>("a");
  cores[1]->New<Message>("b");
  rt.RunFor(Millis(200));
  EXPECT_EQ(fires, 1);
}

TEST_F(EventsSimTest, CompletListenerSurvivesMigration) {
  // A complet registers for remote events, then migrates; it keeps
  // receiving them because delivery goes through its tracked reference.
  auto cores = MakeCores(3);
  auto counter = cores[1]->New<Counter>();  // the listener complet
  monitor::Listener deliver = monitor::ComletListener(
      *cores[0], counter.handle(), "increment");
  // Re-purpose Counter.increment(event-map)? increment expects int; use a
  // dedicated wrapper: deliver event -> increment by 1 via a lambda.
  (void)deliver;
  cores[0]->ListenAt(cores[0]->id(), EventKind::kComletArrived,
                     [&, ref = counter](const Event&) mutable {
                       // Invocation through the ref tracks the listener.
                       cores[0]->RefFromHandle(ref.handle()).Call("increment");
                     });
  cores[0]->New<Message>("one");
  rt.RunUntilIdle();
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);

  // Migrate the listener; events must still reach it.
  cores[1]->MoveId(counter.target(), cores[2]->id());
  cores[0]->New<Message>("two");
  rt.RunUntilIdle();
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 2);
}

TEST_F(EventsSimTest, ShutdownEventEnablesEvacuation) {
  // The paper's reliability use case: on CoreShutdown, migrate complets to
  // a safe core to keep the application alive.
  auto cores = MakeCores(3);
  auto m1 = cores[1]->New<Message>("a");
  auto m2 = cores[1]->New<Message>("b");
  cores[0]->ListenAt(cores[1]->id(), EventKind::kCoreShutdown,
                     [&](const Event& e) {
                       core::Core* dying = rt.Find(e.source);
                       for (ComletId id : dying->ComletsHere())
                         dying->MoveId(id, cores[2]->id());
                     });
  cores[1]->Shutdown(Millis(500));
  rt.RunUntilIdle();
  EXPECT_FALSE(cores[1]->alive());
  EXPECT_TRUE(cores[2]->repository().Contains(m1.target()));
  EXPECT_TRUE(cores[2]->repository().Contains(m2.target()));
  // The application is still alive: a client re-resolves against the
  // surviving core (stubs sourced at the dead core are gone with it).
  auto survivor = cores[0]->RefFromHandle(
      ComletHandle{m1.target(), cores[2]->id(), "test.Message"});
  EXPECT_EQ(survivor.Call("text").AsString(), "a");
}

TEST_F(EventsSimTest, GracefulShutdownFlushesForwardingKnowledge) {
  // Chains that pass through a gracefully shut-down core keep resolving:
  // the dying core broadcasts its tracker knowledge before detaching.
  auto cores = MakeCores(4);
  auto msg = cores[1]->New<Message>("m");
  auto observer = cores[3]->RefTo<Message>(msg.handle());  // hint: core1
  (void)observer;
  // msg evacuates itself when core1 announces shutdown.
  cores[0]->ListenAt(cores[1]->id(), EventKind::kCoreShutdown,
                     [&](const Event& e) {
                       core::Core* dying = rt.Find(e.source);
                       for (ComletId id : dying->ComletsHere())
                         dying->MoveId(id, cores[2]->id());
                     });
  cores[1]->Shutdown(Millis(500));
  rt.RunUntilIdle();
  // The observer's stub still routes: core3 learned core1's forwarding
  // state (msg -> core2) from the shutdown flush.
  EXPECT_EQ(observer.Invoke<std::string>("text"), "m");
}

TEST_F(EventsTest, EventValueMapRoundTrip) {
  Event e;
  e.kind = EventKind::kThreshold;
  e.source = CoreId{4};
  e.comlet = ComletId{CoreId{2}, 9};
  e.probe = InvocationRateProbe(ComletId{CoreId{1}, 1}, ComletId{CoreId{1}, 2});
  e.value = 3.5;
  Event back = monitor::EventFromValue(monitor::EventToValue(e));
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.source, e.source);
  EXPECT_EQ(back.comlet, e.comlet);
  EXPECT_EQ(back.probe.service, e.probe.service);
  EXPECT_DOUBLE_EQ(back.value, e.value);
}

}  // namespace
}  // namespace fargo::testing
