// Shared helpers for the experiment benches (E1..E8, DESIGN.md §4).
//
// Each bench binary regenerates one experiment's table(s) on the simulated
// WAN. Simulated time measures protocol behaviour (latency, messages,
// bytes); google-benchmark is used where wall-clock CPU overhead is itself
// the subject (E3, E4).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/fargo.h"
#include "tests/support/comlets.h"

namespace fargo::bench {

using testing::Counter;
using testing::Data;
using testing::Message;
using testing::Node;
using testing::Printer;
using testing::Worker;

/// Prints a table header: "| col | col |" with a separator row.
inline void TableHeader(const std::vector<std::string>& cols) {
  std::string row = "|", sep = "|";
  for (const std::string& c : cols) {
    row += " " + c + " |";
    sep += std::string(c.size() + 2, '-') + "|";
  }
  std::printf("%s\n%s\n", row.c_str(), sep.c_str());
}

/// Prints one formatted row.
template <class... Args>
void Row(const char* fmt, Args... args) {
  std::printf(fmt, args...);
  std::printf("\n");
}

/// A fresh deployment with n cores on a uniform WAN.
struct World {
  explicit World(int n, SimTime latency = Millis(10),
                 double bytes_per_sec = 1.25e6) {
    testing::RegisterTestComlets();
    for (int i = 0; i < n; ++i)
      cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
    rt.network().SetDefaultLink({latency, bytes_per_sec, true});
  }
  core::Core& operator[](std::size_t i) { return *cores[i]; }

  core::Runtime rt;
  std::vector<core::Core*> cores;
};

}  // namespace fargo::bench
