// Shared helpers for the experiment benches (E1..E13, DESIGN.md §4).
//
// Each bench binary regenerates one experiment's table(s) on the simulated
// WAN. Simulated time measures protocol behaviour (latency, messages,
// bytes); google-benchmark is used where wall-clock CPU overhead is itself
// the subject (E3, E4).
//
// Continuous benchmarking: every bench also emits a machine-readable
// BENCH_<name>.json through the Report class below, with two metric
// classes —
//   deterministic  virtual-time/count metrics (simulated ns, messages,
//                  bytes on the wire, scheduler tasks, serializer
//                  allocations, payload bytes copied). The simulation is
//                  single-threaded and seed-deterministic, so these are
//                  bit-identical across machines AND compilers; CI gates
//                  them with zero tolerance (tools/benchgate).
//   wallclock      host-clock measurements. Recorded for the curious,
//                  never gated — wall time is not reproducible.
// Run with FARGO_BENCH_DETERMINISTIC=1 to skip the wall-clock sections
// (CI does); FARGO_BENCH_OUT=<dir> redirects the JSON files.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/fargo.h"
#include "tests/support/comlets.h"

namespace fargo::bench {

using testing::Counter;
using testing::Data;
using testing::Message;
using testing::Node;
using testing::Printer;
using testing::Worker;

/// Prints a table header: "| col | col |" with a separator row.
inline void TableHeader(const std::vector<std::string>& cols) {
  std::string row = "|", sep = "|";
  for (const std::string& c : cols) {
    row += " " + c + " |";
    sep += std::string(c.size() + 2, '-') + "|";
  }
  std::printf("%s\n%s\n", row.c_str(), sep.c_str());
}

/// Prints one formatted row.
template <class... Args>
void Row(const char* fmt, Args... args) {
  std::printf(fmt, args...);
  std::printf("\n");
}

/// A fresh deployment with n cores on a uniform WAN.
struct World {
  /// Benches pin the deterministic sim (localities = 0) regardless of
  /// FARGO_PARALLEL: every gated metric is defined as the single-threaded
  /// sim's cost, and must not shift when the environment turns the locality
  /// engine on. Parallel-engine benches (bench_parallel) construct their
  /// Runtimes with explicit locality counts instead.
  explicit World(int n, SimTime latency = Millis(10),
                 double bytes_per_sec = 1.25e6)
      : rt(core::RuntimeOptions{0}) {
    testing::RegisterTestComlets();
    for (int i = 0; i < n; ++i)
      cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
    rt.network().SetDefaultLink({latency, bytes_per_sec, true});
  }
  core::Core& operator[](std::size_t i) { return *cores[i]; }

  core::Runtime rt;
  std::vector<core::Core*> cores;
};

/// True when the bench should restrict itself to the deterministic
/// virtual-time sections (FARGO_BENCH_DETERMINISTIC=1): CI mode, where
/// wall-clock loops are wasted heat.
inline bool DeterministicMode() {
  const char* v = std::getenv("FARGO_BENCH_DETERMINISTIC");
  return v != nullptr && v[0] == '1';
}

/// Collects one bench's metrics and writes BENCH_<name>.json. Gate() values
/// are deterministic costs (lower is better) compared exactly by
/// tools/benchgate; Info() values are wall-clock, never gated.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  /// Records a deterministic metric. All gated metrics are costs: benchgate
  /// fails the run if the value ever rises above the checked-in baseline.
  void Gate(const std::string& metric, std::uint64_t value) {
    gated_[metric] = value;
  }

  /// Records a host wall-clock (or otherwise non-reproducible) metric.
  void Info(const std::string& metric, double value) { info_[metric] = value; }

  /// Writes BENCH_<name>.json into $FARGO_BENCH_OUT (default: cwd).
  /// Deterministic keys are emitted sorted; the byte stream is reproducible
  /// whenever the gated values are.
  void Write() const {
    std::string dir = ".";
    if (const char* out = std::getenv("FARGO_BENCH_OUT")) dir = out;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema\": 1,\n",
                 name_.c_str());
    std::fprintf(f, "  \"deterministic\": {");
    const char* sep = "\n";
    for (const auto& [k, v] : gated_) {
      std::fprintf(f, "%s    \"%s\": %llu", sep, k.c_str(),
                   static_cast<unsigned long long>(v));
      sep = ",\n";
    }
    std::fprintf(f, "%s  },\n", gated_.empty() ? "" : "\n");
    std::fprintf(f, "  \"wallclock\": {");
    sep = "\n";
    for (const auto& [k, v] : info_) {
      std::fprintf(f, "%s    \"%s\": %.17g", sep, k.c_str(), v);
      sep = ",\n";
    }
    std::fprintf(f, "%s  }\n}\n", info_.empty() ? "" : "\n");
    std::fclose(f);
    std::printf("[bench] wrote %s (%zu gated, %zu wallclock)\n", path.c_str(),
                gated_.size(), info_.size());
  }

 private:
  std::string name_;
  std::map<std::string, std::uint64_t> gated_;
  std::map<std::string, double> info_;
};

/// Gates the standard virtual-cost profile of a World over a region of
/// bench code: construct to snapshot, Commit() to record the deltas as
///   <prefix>.sim_ns       simulated time elapsed
///   <prefix>.net_msgs     inter-Core messages sent
///   <prefix>.net_bytes    bytes on the wire (payload + framing)
///   <prefix>.sched_tasks  scheduler events executed
///   <prefix>.allocs       serializer buffer allocations (alloc.count)
///   <prefix>.bytes_copied payload bytes copied instead of moved
class Section {
 public:
  Section(Report& report, World& world, std::string prefix)
      : report_(report), world_(world), prefix_(std::move(prefix)) {
    world_.rt.SyncSerialStats();
    sim_ns_ = world_.rt.Now();
    msgs_ = world_.rt.network().total_messages();
    bytes_ = world_.rt.network().total_bytes();
    tasks_ = world_.rt.scheduler().executed();
    allocs_ = world_.rt.metrics().CounterValue("alloc.count");
    copied_ = world_.rt.metrics().CounterValue("net.bytes_copied");
  }

  void Commit() {
    world_.rt.SyncSerialStats();
    const monitor::Registry& reg = world_.rt.metrics();
    report_.Gate(prefix_ + ".sim_ns",
                 static_cast<std::uint64_t>(world_.rt.Now() - sim_ns_));
    report_.Gate(prefix_ + ".net_msgs",
                 world_.rt.network().total_messages() - msgs_);
    report_.Gate(prefix_ + ".net_bytes",
                 world_.rt.network().total_bytes() - bytes_);
    report_.Gate(prefix_ + ".sched_tasks",
                 world_.rt.scheduler().executed() - tasks_);
    report_.Gate(prefix_ + ".allocs",
                 reg.CounterValue("alloc.count") - allocs_);
    report_.Gate(prefix_ + ".bytes_copied",
                 reg.CounterValue("net.bytes_copied") - copied_);
  }

 private:
  Report& report_;
  World& world_;
  std::string prefix_;
  SimTime sim_ns_ = 0;
  std::uint64_t msgs_ = 0, bytes_ = 0, tasks_ = 0, allocs_ = 0, copied_ = 0;
};

}  // namespace fargo::bench
