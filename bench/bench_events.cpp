// E5 (§4.2): monitor events — notification latency and listener fan-out.
//
// The design claim: the threshold lives with the listener, so N listeners
// on one service share a single measurement unit; notification cost is
// linear in the listeners that actually fire, measurement cost is constant.
#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

void FanOutTable(Report& report) {
  std::printf("-- fan-out: N listeners on one completLoad probe --\n");
  TableHeader({"listeners", "samplers", "raw evals / sim-s", "notifications",
               "fired listeners"});
  for (int listeners : {1, 8, 64, 256, 1024}) {
    World w(1);
    monitor::Profiler& prof = w[0].profiler();
    int fired = 0;
    for (int i = 0; i < listeners; ++i) {
      // Half the listeners have thresholds that never trip: they are
      // filtered per listener without extra measurement.
      const double threshold = (i % 2 == 0) ? 0.5 : 1e9;
      w[0].events().ListenThreshold(monitor::ComletLoadProbe(), threshold,
                                    monitor::Trigger::kAbove, Millis(10),
                                    [&](const monitor::Event&) { ++fired; });
    }
    const auto evals0 = prof.evaluations();
    w[0].New<Message>("m");
    w.rt.RunFor(Seconds(1));
    const std::string pre = "fanout" + std::to_string(listeners);
    report.Gate(pre + ".samplers", prof.active_probes());
    report.Gate(pre + ".raw_evals", prof.evaluations() - evals0);
    report.Gate(pre + ".notifications", w[0].events().notifications());
    report.Gate(pre + ".fired", static_cast<std::uint64_t>(fired));
    Row("| %9d | %8zu | %17llu | %13llu | %15d |", listeners,
        prof.active_probes(),
        static_cast<unsigned long long>(prof.evaluations() - evals0),
        static_cast<unsigned long long>(w[0].events().notifications()), fired);
  }
  std::printf("\nShape check: samplers and raw evaluations stay constant as "
              "listeners grow; only notification work scales (with firing "
              "listeners).\n");
}

void NotificationLatencyTable(Report& report) {
  std::printf("\n-- notification latency: crossing -> listener runs --\n");
  TableHeader({"listener at", "sampling (ms)", "latency (sim ms)"});
  struct Case {
    const char* name;
    bool remote;
    SimTime interval;
  };
  for (const Case& c : {Case{"same core", false, Millis(10)},
                        Case{"same core", false, Millis(100)},
                        Case{"remote core (10ms link)", true, Millis(10)},
                        Case{"remote core (10ms link)", true, Millis(100)}}) {
    World w(2);
    SimTime fired_at = -1;
    auto listener = [&](const monitor::Event&) { fired_at = w.rt.Now(); };
    if (c.remote) {
      w[1].ListenThresholdAt(w[0].id(), monitor::ComletLoadProbe(), 0.5,
                             monitor::Trigger::kAbove, c.interval, listener);
    } else {
      w[0].events().ListenThreshold(monitor::ComletLoadProbe(), 0.5,
                                    monitor::Trigger::kAbove, c.interval,
                                    listener);
    }
    const SimTime crossed_at = w.rt.Now();
    w[0].New<Message>("m");  // load crosses the threshold now
    w.rt.RunFor(Seconds(2));
    report.Gate(std::string("latency_ns.") + (c.remote ? "remote" : "local") +
                    std::to_string(static_cast<int>(ToMillis(c.interval))) +
                    "ms",
                fired_at < 0 ? 0
                             : static_cast<std::uint64_t>(fired_at -
                                                          crossed_at));
    Row("| %-23s | %13.0f | %16.1f |", c.name, ToMillis(c.interval),
        fired_at < 0 ? -1.0 : ToMillis(fired_at - crossed_at));
  }
  std::printf("\nShape check: latency ~ one sampling interval (detection) "
              "plus one link latency for remote listeners.\n");
}

void LifecycleEventRateTable(Report& report) {
  std::printf("\n-- lifecycle event throughput: moves observed by a live "
              "monitor --\n");
  TableHeader({"moves", "events delivered", "msgs total"});
  for (int moves : {10, 100, 1000}) {
    World w(3);
    std::uint64_t delivered = 0;
    for (core::Core* c : {w.cores[1], w.cores[2]}) {
      for (auto kind : {monitor::EventKind::kComletArrived,
                        monitor::EventKind::kComletDeparted}) {
        w[0].ListenAt(c->id(), kind,
                      [&](const monitor::Event&) { ++delivered; });
      }
    }
    auto msg = w[1].New<Message>("m");
    for (int i = 0; i < moves; ++i) {
      core::Core& from = *w.cores[1 + (i % 2)];
      core::Core& to = *w.cores[1 + ((i + 1) % 2)];
      from.MoveId(msg.target(), to.id());
    }
    w.rt.RunUntilIdle();
    const std::string pre = "lifecycle" + std::to_string(moves);
    report.Gate(pre + ".events", delivered);
    report.Gate(pre + ".msgs", w.rt.network().total_messages());
    Row("| %5d | %16llu | %10llu |", moves,
        static_cast<unsigned long long>(delivered),
        static_cast<unsigned long long>(w.rt.network().total_messages()));
  }
  std::printf("\nShape check: 2 events per move (departed+arrived), each one "
              "notify message to the monitor.\n");
}

}  // namespace

int main() {
  Report report("events");
  std::printf("== E5: monitor events (§4.2) ==\n\n");
  FanOutTable(report);
  NotificationLatencyTable(report);
  LifecycleEventRateTable(report);
  report.Write();
  return 0;
}
