// E15: message formation — batching small messages into framed wire
// messages (docs/PROTOCOL.md §Sessions & formation).
//
// The claim: a Core's small outbound messages (requests issued in the same
// tick, slot acks, event notifications) coalesce per destination into
// kBatch frames, cutting wire messages by a large factor under bursty
// load, while a lone request still leaves as a raw message on the same
// tick — so low-load latency is untouched. Each table runs the identical
// workload twice, with formation disabled then enabled, and the bench
// itself enforces the headline numbers: >=3x fewer messages under the
// storms, bit-identical simulated time and message count at low load.
#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

struct Costs {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t tasks = 0;
  std::uint64_t sim_ns = 0;
};

Costs Snap(World& w) {
  return {w.rt.network().total_messages(), w.rt.network().total_bytes(),
          w.rt.scheduler().executed(), static_cast<std::uint64_t>(w.rt.Now())};
}

Costs Delta(World& w, const Costs& start) {
  const Costs now = Snap(w);
  return {now.msgs - start.msgs, now.bytes - start.bytes,
          now.tasks - start.tasks, now.sim_ns - start.sim_ns};
}

void SetFormation(World& w, bool on) {
  for (core::Core* c : w.cores) c->formation().SetEnabled(on);
}

void GateCosts(Report& report, const std::string& prefix, const Costs& c) {
  report.Gate(prefix + ".sim_ns", c.sim_ns);
  report.Gate(prefix + ".net_msgs", c.msgs);
  report.Gate(prefix + ".net_bytes", c.bytes);
  report.Gate(prefix + ".sched_tasks", c.tasks);
}

void PrintRow(const char* config, const Costs& c) {
  Row("| %-9s | %8llu | %9llu | %11llu | %11.2f |", config,
      static_cast<unsigned long long>(c.msgs),
      static_cast<unsigned long long>(c.bytes),
      static_cast<unsigned long long>(c.tasks), c.sim_ns / 1e6);
}

/// A same-tick burst of one-way posts: 400 fire-and-forget increments
/// issued back to back. Every post is a request on the wire plus a slot
/// ack coming back; formation coalesces the same-tick requests into one
/// frame and packs the acks under the bulk flush policy.
Costs OnewayStorm(bool formation_on) {
  World w(2, Millis(10));
  SetFormation(w, formation_on);
  auto counter = w[1].New<Counter>();
  w.rt.RunUntilIdle();
  auto stub = w[0].RefTo<Counter>(counter.handle());
  const Costs start = Snap(w);
  for (int i = 0; i < 400; ++i) stub.Post("increment");
  w.rt.RunUntilIdle();
  const auto* anchor = static_cast<const Counter*>(
      w[1].repository().Get(counter.target()).get());
  if (anchor == nullptr || anchor->value() != 400) {
    std::fprintf(stderr, "oneway storm lost operations\n");
    std::exit(1);
  }
  return Delta(w, start);
}

/// High-fan-in monitor traffic: one admin Core listening for lifecycle
/// events at four worker Cores while every worker relocates its complets
/// in one burst — each move emits a departed and an arrived notification
/// toward the single monitor, exactly the §4.2 monitoring topology that
/// drowns a Core in small messages.
Costs MonitorFanIn(bool formation_on) {
  const int kWorkers = 4, kComlets = 24;
  World w(1 + kWorkers, Millis(10));
  SetFormation(w, formation_on);
  std::vector<std::pair<int, core::ComletRef<Message>>> placed;
  for (int c = 1; c <= kWorkers; ++c)
    for (int i = 0; i < kComlets; ++i)
      placed.emplace_back(c, w[c].New<Message>("m"));
  w.rt.RunUntilIdle();
  // Listeners go in after placement so the creation-time arrival events
  // stay out of the measured (and asserted) notification count.
  std::uint64_t delivered = 0;
  for (int c = 1; c <= kWorkers; ++c) {
    for (auto kind : {monitor::EventKind::kComletArrived,
                      monitor::EventKind::kComletDeparted}) {
      w[0].ListenAt(w[c].id(), kind,
                    [&](const monitor::Event&) { ++delivered; });
    }
  }
  w.rt.RunUntilIdle();
  const Costs start = Snap(w);
  for (auto& [c, ref] : placed) {
    const int dest = 1 + (c % kWorkers);
    w[c].MoveIdAsync(ref.target(), w[dest].id());
  }
  w.rt.RunUntilIdle();
  if (delivered != 2ull * kWorkers * kComlets) {
    std::fprintf(stderr, "monitor fan-in lost notifications: %llu\n",
                 static_cast<unsigned long long>(delivered));
    std::exit(1);
  }
  return Delta(w, start);
}

/// Low load: 20 sequential request/reply round trips, one outstanding at a
/// time. A single-occupant flush sends the raw message on the same tick,
/// so formation must change neither the message count nor a nanosecond of
/// simulated time.
Costs LowLoad(bool formation_on) {
  World w(2, Millis(10));
  SetFormation(w, formation_on);
  auto counter = w[1].New<Counter>();
  w.rt.RunUntilIdle();
  auto stub = w[0].RefTo<Counter>(counter.handle());
  const Costs start = Snap(w);
  for (int i = 0; i < 20; ++i) stub.Invoke<std::int64_t>("increment");
  return Delta(w, start);
}

}  // namespace

int main() {
  Report report("formation");
  std::printf("== E15: message formation (batching) ==\n\n");

  struct Table {
    const char* title;
    const char* prefix;
    Costs (*run)(bool);
    bool expect_3x;
  };
  const Table tables[] = {
      {"one-way storm: 400 same-tick posts + slot acks", "oneway_storm",
       OnewayStorm, true},
      {"monitor fan-in: 96 moves, 192 notifications to one admin core",
       "monitor_fanin", MonitorFanIn, true},
      {"low load: 20 sequential request/reply round trips", "lowload",
       LowLoad, false},
  };

  bool ok = true;
  for (const Table& t : tables) {
    std::printf("-- %s --\n", t.title);
    TableHeader({"formation", "net msgs", "net bytes", "sched tasks",
                 "sim ms"});
    const Costs off = t.run(false);
    const Costs on = t.run(true);
    PrintRow("off", off);
    PrintRow("on", on);
    GateCosts(report, std::string(t.prefix) + ".off", off);
    GateCosts(report, std::string(t.prefix) + ".on", on);
    if (t.expect_3x) {
      const double ratio =
          on.msgs == 0 ? 0.0 : static_cast<double>(off.msgs) / on.msgs;
      std::printf("message reduction: %.1fx\n\n", ratio);
      if (ratio < 3.0) {
        std::fprintf(stderr,
                     "%s: formation cut messages only %.2fx (< 3x): "
                     "%llu -> %llu\n",
                     t.prefix, ratio, static_cast<unsigned long long>(off.msgs),
                     static_cast<unsigned long long>(on.msgs));
        ok = false;
      }
    } else {
      std::printf("\n");
      if (on.sim_ns != off.sim_ns || on.msgs != off.msgs) {
        std::fprintf(stderr,
                     "%s: formation changed the low-load profile: "
                     "sim_ns %llu -> %llu, msgs %llu -> %llu\n",
                     t.prefix, static_cast<unsigned long long>(off.sim_ns),
                     static_cast<unsigned long long>(on.sim_ns),
                     static_cast<unsigned long long>(off.msgs),
                     static_cast<unsigned long long>(on.msgs));
        ok = false;
      }
    }
  }
  std::printf("Shape check: the storms batch >=3x fewer wire messages; the "
              "low-load rows are identical (single-occupant flushes are raw "
              "sends on the same tick).\n");
  report.Write();
  return ok ? 0 : 1;
}
