// E16: directory plane at scale — the paper's deployment blown up two
// orders of magnitude past the other experiments (hundreds of Cores,
// thousands of complets, sustained layout churn), scaled down ~50x from
// the 10k-core / 1M-complet headline configuration so CI regenerates it
// in seconds.
//
// Expected shape: after churn severs and restamps the tracker chains, a
// stale observer pays at most the bounded-hop route (chain hit or one
// shard lookup); once the reply hint lands, steady-state delivery is one
// hop regardless of how much the layout moved. Directory lookups are
// bounded by the number of *stale observers*, not by the number of
// movements — the sub-linearity that makes the sharded plane scale.
#include "bench/support.h"
#include "src/net/formation.h"
#include "src/serial/frame.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

/// Running totals of directory-plane messages seen on the wire. Formation
/// frames are unwrapped: directory traffic rides the priority lane, which
/// still travels as kBatch frames.
struct DirTraffic {
  std::uint64_t publishes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t replies = 0;
  std::uint64_t maps = 0;

  void Count(net::MessageKind k) {
    if (k == net::MessageKind::kDirectoryPublish) ++publishes;
    if (k == net::MessageKind::kDirectoryLookup) ++lookups;
    if (k == net::MessageKind::kDirectoryReply) ++replies;
    if (k == net::MessageKind::kDirectoryMap) ++maps;
  }
};

void TapDirTraffic(core::Runtime& rt, DirTraffic& out) {
  rt.network().SetTap([&out](const net::Message& m) {
    if (m.kind == net::MessageKind::kBatch) {
      serial::FrameReader frame(m.payload);
      while (frame.HasNext()) {
        serial::Reader item = frame.Next();
        out.Count(net::ReadBatchItem(item).kind);
      }
      return;
    }
    out.Count(m.kind);
  });
}

}  // namespace

int main() {
  Report report("scale");
  constexpr std::size_t kCores = 200;
  constexpr std::size_t kShards = 10;
  constexpr std::size_t kComplets = 5000;
  constexpr std::size_t kMoved = 1250;   // complets that churn...
  constexpr std::size_t kRounds = 2;     // ...this many times each
  std::printf("== E16: sharded directory at scale ==\n");
  std::printf("%zu cores, %zu shards, %zu complets; churn: %zu complets x "
              "%zu rounds (%zu movements)\n\n",
              kCores, kShards, kComplets, kMoved, kRounds, kMoved * kRounds);

  World w(static_cast<int>(kCores), Millis(2), 1.25e7);
  std::vector<CoreId> owners;
  for (std::size_t s = 0; s < kShards; ++s) owners.push_back(w[s].id());
  w.rt.EnableDirectory(owners, /*vnodes=*/16);
  DirTraffic dir;
  TapDirTraffic(w.rt, dir);

  // -- populate: complets round-robin, a stale-prone observer ref each ------
  Section populate(report, w, "populate");
  std::vector<core::ComletRef<Message>> complets;
  std::vector<core::ComletRef<Message>> observers;
  std::vector<std::size_t> host(kComplets);
  complets.reserve(kComplets);
  observers.reserve(kComplets);
  for (std::size_t i = 0; i < kComplets; ++i) {
    host[i] = i % kCores;
    complets.push_back(w[host[i]].New<Message>("m" + std::to_string(i)));
    observers.push_back(
        w[(i * 7 + 13) % kCores].RefTo<Message>(complets[i].handle()));
  }
  w.rt.RunUntilIdle();
  populate.Commit();

  // -- warm: every observer resolves once (stamps its hint) ----------------
  Section warm(report, w, "warm");
  for (std::size_t i = 0; i < kComplets; ++i) {
    core::Core& oc = w[(i * 7 + 13) % kCores];
    oc.invocation().Invoke(observers[i].handle(), "text", {});
  }
  w.rt.RunUntilIdle();
  warm.Commit();

  // -- churn: movement waves; observers are told nothing -------------------
  const DirTraffic before_churn = dir;
  Section churn(report, w, "churn");
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kMoved; ++i) {
      const std::size_t c = i * (kComplets / kMoved);
      std::size_t dest = (host[c] + 17 + 13 * r) % kCores;
      if (dest == host[c]) dest = (dest + 1) % kCores;
      w[host[c]].MoveId(complets[c].target(), w[dest].id());
      host[c] = dest;
    }
    w.rt.RunUntilIdle();
  }
  churn.Commit();
  const std::uint64_t churn_publishes = dir.publishes - before_churn.publishes;
  report.Gate("churn.dir_publishes", churn_publishes);

  // -- gc: sever the intermediate (unpinned) tracker chains ----------------
  // Every first-round destination tracker is unpointed-at and collectable;
  // routing must survive on the shard records alone.
  Section gc(report, w, "gc");
  std::uint64_t reclaimed = 0;
  for (core::Core* c : w.rt.Cores()) reclaimed += c->trackers().CollectGarbage();
  gc.Commit();
  report.Gate("gc.reclaimed", reclaimed);

  // -- resolve: every stale observer re-finds its target -------------------
  const DirTraffic before_resolve = dir;
  Section resolve(report, w, "resolve");
  std::uint64_t resolve_max_hops = 0;
  for (std::size_t i = 0; i < kComplets; ++i) {
    core::Core& oc = w[(i * 7 + 13) % kCores];
    core::InvokeResult res =
        oc.invocation().Invoke(observers[i].handle(), "text", {});
    resolve_max_hops =
        std::max(resolve_max_hops, static_cast<std::uint64_t>(res.hops));
  }
  w.rt.RunUntilIdle();
  resolve.Commit();
  const std::uint64_t resolve_lookups = dir.lookups - before_resolve.lookups;
  report.Gate("resolve.dir_lookups", resolve_lookups);
  report.Gate("resolve.max_hops", resolve_max_hops);

  // -- steady: the reply hints have landed; everything is one hop ----------
  const DirTraffic before_steady = dir;
  Section steady(report, w, "steady");
  std::uint64_t steady_max_hops = 0;
  for (std::size_t i = 0; i < kComplets; ++i) {
    core::Core& oc = w[(i * 7 + 13) % kCores];
    core::InvokeResult res =
        oc.invocation().Invoke(observers[i].handle(), "text", {});
    steady_max_hops =
        std::max(steady_max_hops, static_cast<std::uint64_t>(res.hops));
  }
  w.rt.RunUntilIdle();
  steady.Commit();
  report.Gate("steady.dir_lookups", dir.lookups - before_steady.lookups);
  report.Gate("steady.max_hops", steady_max_hops);

  const std::uint64_t moves = kMoved * kRounds;
  TableHeader({"phase", "dir publishes", "dir lookups", "max hops"});
  Row("| %-11s | %13llu | %11llu | %8s |", "churn",
      static_cast<unsigned long long>(churn_publishes),
      static_cast<unsigned long long>(before_resolve.lookups -
                                      before_churn.lookups),
      "-");
  Row("| %-11s | %13llu | %11llu | %8llu |", "resolve",
      static_cast<unsigned long long>(before_steady.publishes -
                                      before_resolve.publishes),
      static_cast<unsigned long long>(resolve_lookups),
      static_cast<unsigned long long>(resolve_max_hops));
  Row("| %-11s | %13llu | %11llu | %8llu |", "steady",
      static_cast<unsigned long long>(dir.publishes - before_steady.publishes),
      static_cast<unsigned long long>(dir.lookups - before_steady.lookups),
      static_cast<unsigned long long>(steady_max_hops));
  report.Info("moves", static_cast<double>(moves));
  report.Info("lookups_per_move",
              static_cast<double>(resolve_lookups) / static_cast<double>(moves));

  std::printf("\nShape check: churn publishes exactly one record per "
              "movement; resolve lookups are bounded by the %zu stale "
              "observers (not the %llu movements); steady-state max hops "
              "is %llu with zero directory traffic.\n",
              kMoved, static_cast<unsigned long long>(moves),
              static_cast<unsigned long long>(steady_max_hops));
  report.Write();
  return 0;
}
