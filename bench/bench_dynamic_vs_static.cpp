// E8 (§1 motivation): dynamic layout vs static layout on a degrading WAN.
//
// Two identical client/worker/data applications run side by side. The WAN
// link between the worker's core and the data's core degrades over time
// (latency grows). The dynamic copy is governed by a relocation policy
// (invocation-rate colocation rule); the static copy keeps its deploy-time
// layout. The table reports each app's request latency over time — the
// dynamic app adapts, the static one tracks the degradation.
#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

int main() {
  Report report("dynamic_vs_static");
  std::printf("== E8: dynamic vs static layout under WAN degradation (§1) "
              "==\n\n");
  World w(3, Millis(10), 1.25e6);  // admin+clients, host A, host B
  core::Core& admin = w[0];
  core::Core& host_a = w[1];
  core::Core& host_b = w[2];

  auto mk = [&](const char* tag) {
    auto worker = host_a.New<Worker>();
    auto data = host_b.New<Data>(std::size_t{200});
    worker.Call("bind", {Value(data.handle())});
    (void)tag;
    return std::pair{worker, data};
  };
  auto [dyn_worker, dyn_data] = mk("dynamic");
  auto [sta_worker, sta_data] = mk("static");
  auto dyn_client = admin.RefFromHandle(dyn_worker.handle());
  auto sta_client = admin.RefFromHandle(sta_worker.handle());

  // The dynamic app's policy, in the scripting language.
  script::Engine engine(w.rt, admin);
  engine.Run(
      "$c = %1\n"
      "on methodInvokeRate(2) from $c[0] to $c[1] every 0.5 do\n"
      "  move $c[0] to coreOf $c[1]\n"
      "end",
      {Value(Value::List{Value(dyn_worker.handle()),
                         Value(dyn_data.handle())})});

  std::printf("phase 1 (t<6s): healthy link A<->B (10 ms). phase 2: link "
              "degrades 10 ms -> 160 ms, doubling every 2 s.\n\n");
  TableHeader({"t (sim s)", "A<->B latency (ms)", "dynamic (sim ms)",
               "static (sim ms)", "dynamic layout"});

  SimTime ab_latency = Millis(10);
  double dyn_total = 0, sta_total = 0;
  SimTime dyn_total_ns = 0, sta_total_ns = 0;
  Section section(report, w, "degradation_run");
  for (int step = 0; step < 16; ++step) {
    // Degradation schedule: after 6 s, the link worsens every 2 s.
    if (step >= 6 && step % 2 == 0 && ab_latency < Millis(160)) {
      ab_latency *= 2;
      w.rt.network().SetLink(host_a.id(), host_b.id(),
                             {ab_latency, 1.25e6, true});
    }
    // Each app serves 5 requests per second of simulated time.
    double dyn_ms = 0, sta_ms = 0;
    for (int r = 0; r < 5; ++r) {
      SimTime t0 = w.rt.Now();
      dyn_client.Call("work");
      dyn_total_ns += w.rt.Now() - t0;
      dyn_ms += ToMillis(w.rt.Now() - t0);
      t0 = w.rt.Now();
      sta_client.Call("work");
      sta_total_ns += w.rt.Now() - t0;
      sta_ms += ToMillis(w.rt.Now() - t0);
      w.rt.RunFor(Millis(200));
    }
    dyn_total += dyn_ms;
    sta_total += sta_ms;
    const char* layout =
        host_b.repository().Contains(dyn_worker.target())
            ? "worker+data @ B"
            : "worker @ A, data @ B";
    Row("| %9.1f | %18.0f | %16.1f | %15.1f | %-20s |",
        ToSeconds(w.rt.Now()), ToMillis(ab_latency), dyn_ms / 5, sta_ms / 5,
        layout);
  }

  section.Commit();
  report.Gate("dynamic_total_ns", static_cast<std::uint64_t>(dyn_total_ns));
  report.Gate("static_total_ns", static_cast<std::uint64_t>(sta_total_ns));
  std::printf("\ntotals: dynamic %.1f ms, static %.1f ms  (dynamic/static = "
              "%.2f)\n",
              dyn_total, sta_total, dyn_total / sta_total);
  std::printf("Shape check: identical until the policy colocates; once the "
              "link degrades the static app's latency tracks it while the "
              "dynamic app stays flat.\n");
  report.Write();
  return 0;
}
