// E11 (observability): wall-clock cost of the metrics/tracing hot paths.
// The design target is an allocation-free, lock-cheap recording path — a
// counter bump or span write must be cheap enough to leave tracing on
// during soaks — plus the overhead tracing adds to a full simulated RPC.
#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>

#include "bench/support.h"
#include "src/monitor/metrics.h"
#include "src/monitor/trace.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

void BM_CounterInc(benchmark::State& state) {
  monitor::Registry reg;
  monitor::Counter& c = reg.counter("bench.hits");
  for (auto _ : state) c.Inc();
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  monitor::Registry reg;
  monitor::Histogram& h =
      reg.histogram("bench.lat", monitor::Registry::LatencyBounds());
  double v = 0;
  for (auto _ : state) {
    h.Observe(v);
    v += 1e5;
    if (v > 1e10) v = 0;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

// Name lookup through the registry lock — the path Cores avoid by caching
// instrument pointers at construction.
void BM_RegistryLookup(benchmark::State& state) {
  monitor::Registry reg;
  reg.counter("bench.hits");
  for (auto _ : state) benchmark::DoNotOptimize(&reg.counter("bench.hits"));
}
BENCHMARK(BM_RegistryLookup);

// One open+close span cycle into the ring buffer.
void BM_SpanOpenClose(benchmark::State& state) {
  monitor::Tracer tracer(CoreId{1});
  tracer.SetEnabled(true);
  SimTime now = 0;
  for (auto _ : state) {
    auto span = tracer.OpenSpan(monitor::SpanKind::kRoot, "bench", {}, now);
    tracer.CloseSpan(span.token, now + 1000, monitor::SpanOutcome::kOk, 1);
    now += 2000;
  }
  benchmark::DoNotOptimize(tracer.buffer().total_added());
}
BENCHMARK(BM_SpanOpenClose);

// The disabled path: what every untraced deployment pays.
void BM_SpanDisabled(benchmark::State& state) {
  monitor::Tracer tracer(CoreId{1});
  for (auto _ : state) {
    auto span = tracer.OpenSpan(monitor::SpanKind::kRoot, "bench", {}, 0);
    tracer.CloseSpan(span.token, 1000, monitor::SpanOutcome::kOk, 1);
    benchmark::DoNotOptimize(span.token);
  }
}
BENCHMARK(BM_SpanDisabled);

// Full cross-core RPC with tracing off vs on: the end-to-end overhead of
// span recording plus the trace tail on the wire.
void RpcBench(benchmark::State& state, bool tracing) {
  World w(2);
  w.rt.SetTracing(tracing);
  auto counter = w[0].New<Counter>();
  auto stub = w[1].RefTo<Counter>(counter.handle());
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.Invoke<std::int64_t>("increment"));
    // Keep the ring from wrapping mid-measurement noise: reset per 4k.
    if (tracing && w[1].tracer().buffer().size() > 4096) {
      w[0].tracer().buffer().Reset();
      w[1].tracer().buffer().Reset();
    }
  }
}
void BM_RpcTracingOff(benchmark::State& state) { RpcBench(state, false); }
void BM_RpcTracingOn(benchmark::State& state) { RpcBench(state, true); }
BENCHMARK(BM_RpcTracingOff);
BENCHMARK(BM_RpcTracingOn);

// Chrome-trace export of a full ring (the `trace dump` cost).
void BM_ChromeExport(benchmark::State& state) {
  monitor::Tracer tracer(CoreId{1}, 8192);
  tracer.SetEnabled(true);
  for (int i = 0; i < 8192; ++i) {
    auto span = tracer.OpenSpan(monitor::SpanKind::kExec, "method",
                                {}, static_cast<SimTime>(i) * 1000);
    tracer.CloseSpan(span.token, static_cast<SimTime>(i) * 1000 + 500,
                     monitor::SpanOutcome::kOk);
  }
  const std::vector<monitor::Span> spans = tracer.buffer().Snapshot();
  for (auto _ : state) {
    std::ostringstream os;
    benchmark::DoNotOptimize(
        monitor::WriteChromeTrace(os, {spans}, {{CoreId{1}, "core"}}));
  }
}
BENCHMARK(BM_ChromeExport);

// Deterministic section: a fixed scripted scenario — 100 traced RPCs over a
// 10 ms link — whose virtual-cost profile is gated in BENCH_metrics.json, so
// the observability layer's wire/alloc footprint cannot silently grow.
void TracedRpcSection(Report& report) {
  World w(2);
  w.rt.SetTracing(true);
  auto counter = w[0].New<Counter>();
  auto stub = w[1].RefTo<Counter>(counter.handle());
  stub.Invoke<std::int64_t>("increment");  // warm the route
  Section section(report, w, "traced_rpc100");
  for (int i = 0; i < 100; ++i) (void)stub.Invoke<std::int64_t>("increment");
  section.Commit();
  report.Gate("traced_rpc100.spans", w[0].tracer().buffer().total_added() +
                                         w[1].tracer().buffer().total_added());
}

}  // namespace

int main(int argc, char** argv) {
  Report report("metrics");
  std::printf("== E11: observability hot paths (metrics + tracing) ==\n");
  if (!DeterministicMode()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    // A coarse hot-path figure for the JSON report (wallclock, never gated).
    monitor::Registry reg;
    monitor::Counter& c = reg.counter("bench.hits");
    // fargolint: allow(wallclock) host-clock Info() metric, never gated; this branch is skipped in deterministic mode
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000000; ++i) c.Inc();
    // fargolint: allow(wallclock) host-clock Info() metric, never gated; this branch is skipped in deterministic mode
    const auto dt = std::chrono::steady_clock::now() - t0;
    report.Info("counter_inc_ns",
                std::chrono::duration<double, std::nano>(dt).count() / 1e6);
  }
  TracedRpcSection(report);
  report.Write();
  return 0;
}
