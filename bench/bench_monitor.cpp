// E4 (§4.1): profiling services — instant-query caching, continuous
// sampling overhead, and EMA convergence vs sampling interval.
#include <benchmark/benchmark.h>

#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

// Instant query served from the TTL cache.
void BM_InstantCached(benchmark::State& state) {
  World w(1);
  for (int i = 0; i < 20; ++i) w[0].New<Data>(std::size_t{1000});
  monitor::Profiler& prof = w[0].profiler();
  prof.SetCacheTtl(Seconds(1000));
  prof.Instant(monitor::MemoryUseProbe());  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(prof.Instant(monitor::MemoryUseProbe()));
  }
}
BENCHMARK(BM_InstantCached);

// The same query re-measured every time (cache disabled): memoryUse must
// serialize every hosted complet, which is why the paper caches.
void BM_InstantUncached(benchmark::State& state) {
  World w(1);
  for (int i = 0; i < 20; ++i) w[0].New<Data>(std::size_t{1000});
  monitor::Profiler& prof = w[0].profiler();
  prof.SetCacheTtl(-1);  // every request re-evaluates
  for (auto _ : state) {
    benchmark::DoNotOptimize(prof.Instant(monitor::MemoryUseProbe()));
  }
}
BENCHMARK(BM_InstantUncached);

// Cheap gauge, uncached, for contrast.
void BM_InstantComletLoadUncached(benchmark::State& state) {
  World w(1);
  for (int i = 0; i < 20; ++i) w[0].New<Data>(std::size_t{1000});
  monitor::Profiler& prof = w[0].profiler();
  prof.SetCacheTtl(-1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prof.Instant(monitor::ComletLoadProbe()));
  }
}
BENCHMARK(BM_InstantComletLoadUncached);

// Wall-clock cost of running a simulated second with N continuous probes.
void BM_ContinuousProbes(benchmark::State& state) {
  World w(2);
  auto worker = w[0].New<Worker>();
  auto data = w[0].New<Data>(std::size_t{100});
  worker.Call("bind", {Value(data.handle())});
  monitor::Profiler& prof = w[0].profiler();
  std::vector<monitor::ProbeKey> keys;
  for (int i = 0; i < state.range(0); ++i) {
    monitor::ProbeKey k = monitor::ComletLoadProbe();
    switch (i % 3) {
      case 0:
        k = monitor::ComletLoadProbe();
        break;
      case 1:
        k = monitor::BandwidthProbe(w[1].id());
        break;
      case 2:
        k = monitor::InvocationRateProbe(worker.target(), data.target());
        break;
    }
    // Distinct interests join the same sampler per key (refcounted).
    prof.Start(k, Millis(10));
    keys.push_back(k);
  }
  for (auto _ : state) {
    w.rt.RunFor(Seconds(1));
  }
  for (const auto& k : keys) prof.Stop(k);
}
BENCHMARK(BM_ContinuousProbes)->Arg(1)->Arg(3)->Arg(30);

void EmaConvergenceTable(Report& report) {
  std::printf("\n-- EMA convergence: sampling interval vs time to track a "
              "load step (threshold 90%%) --\n");
  TableHeader({"interval (ms)", "samples to 90%", "sim time to 90% (ms)"});
  for (SimTime interval : {Millis(5), Millis(20), Millis(100), Millis(500)}) {
    World w(1);
    monitor::Profiler& prof = w[0].profiler();
    prof.Start(monitor::ComletLoadProbe(), interval);
    // Prime the average at load 0, then step 0 -> 10 complets.
    w.rt.RunFor(10 * interval);
    std::vector<core::ComletRef<Message>> kept;
    for (int i = 0; i < 10; ++i) kept.push_back(w[0].New<Message>("x"));
    const SimTime t0 = w.rt.Now();
    int samples = 0;
    while (prof.Get(monitor::ComletLoadProbe()) < 9.0 &&
           samples < 10000) {
      w.rt.RunFor(interval);
      ++samples;
    }
    report.Gate("ema_samples_at_" +
                    std::to_string(static_cast<int>(ToMillis(interval))) +
                    "ms",
                static_cast<std::uint64_t>(samples));
    Row("| %13.0f | %14d | %20.1f |", ToMillis(interval), samples,
        ToMillis(w.rt.Now() - t0));
    prof.Stop(monitor::ComletLoadProbe());
  }
  std::printf("\nShape check: convergence needs a fixed number of SAMPLES "
              "(alpha-dependent), so time-to-track scales linearly with the "
              "interval — the administrator's accuracy/overhead knob.\n");
}

void CacheEffectTable(Report& report) {
  std::printf("\n-- instant-query caching: raw evaluations for 1000 queries "
              "--\n");
  TableHeader({"cache TTL (ms)", "queries", "raw evaluations"});
  for (SimTime ttl : {Millis(0), Millis(10), Millis(100)}) {
    World w(1);
    for (int i = 0; i < 5; ++i) w[0].New<Data>(std::size_t{100});
    monitor::Profiler& prof = w[0].profiler();
    prof.SetCacheTtl(ttl);
    const auto evals0 = prof.evaluations();
    for (int q = 0; q < 1000; ++q) {
      prof.Instant(monitor::MemoryUseProbe());
      w.rt.RunFor(Millis(1));  // queries spread 1 ms apart
    }
    report.Gate(
        "evals_ttl" + std::to_string(static_cast<int>(ToMillis(ttl))) + "ms",
        prof.evaluations() - evals0);
    Row("| %14.0f | %7d | %15llu |", ToMillis(ttl), 1000,
        static_cast<unsigned long long>(prof.evaluations() - evals0));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Report report("monitor");
  std::printf("== E4: profiling services (§4.1) ==\n");
  if (!DeterministicMode()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  EmaConvergenceTable(report);
  CacheEffectTable(report);
  report.Write();
  return 0;
}
