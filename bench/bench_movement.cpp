// E2 (§3.3): movement protocol cost — move latency and stream size vs
// closure size, and the single-inter-Core-message property as the pull
// group grows.
#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

void ClosureSizeSweep(Report& report) {
  std::printf("-- movement cost vs closure size (10 ms, 10 Mbit/s link) --\n");
  TableHeader({"closure bytes", "stream bytes", "move (sim ms)",
               "data msgs", "total msgs"});
  for (std::size_t size :
       {std::size_t{1} << 10, std::size_t{1} << 12, std::size_t{1} << 14,
        std::size_t{1} << 16, std::size_t{1} << 18, std::size_t{1} << 20}) {
    World w(2);
    auto data = w[0].New<Data>(size);
    w.rt.network().ResetStats();
    Section section(report, w, "closure" + std::to_string(size));
    const SimTime t0 = w.rt.Now();
    w[0].Move(data, w[1].id());
    section.Commit();
    const double ms = ToMillis(w.rt.Now() - t0);
    report.Gate("closure" + std::to_string(size) + ".stream_bytes",
                w[0].movement().last_move_stats().stream_bytes);
    const auto fwd = w.rt.network().StatsBetween(w[0].id(), w[1].id());
    Row("| %13zu | %12zu | %13.1f | %9llu | %10llu |", size,
        w[0].movement().last_move_stats().stream_bytes, ms,
        static_cast<unsigned long long>(fwd.messages),
        static_cast<unsigned long long>(w.rt.network().total_messages()));
  }
}

void PullGroupSweep(Report& report) {
  std::printf("\n-- one stream per move request: pulled group size sweep "
              "(chain of Node complets) --\n");
  TableHeader({"pulled complets", "complets moved", "stream bytes",
               "data msgs A->B", "move (sim ms)"});
  for (int pulled : {0, 1, 2, 4, 8, 16}) {
    World w(2);
    // head pulls a chain of `pulled` complets.
    auto head = w[0].New<Node>();
    core::ComletRef<Node> prev = head;
    std::vector<core::ComletRef<Node>> chain;
    for (int i = 0; i < pulled; ++i) {
      auto next = w[0].New<Node>();
      prev.Call("setNext", {Value(next.handle()), Value("pull")});
      chain.push_back(next);
      prev = next;
    }
    w.rt.network().ResetStats();
    Section section(report, w, "pull" + std::to_string(pulled));
    const SimTime t0 = w.rt.Now();
    w[0].Move(head, w[1].id());
    section.Commit();
    const double ms = ToMillis(w.rt.Now() - t0);
    const auto& stats = w[0].movement().last_move_stats();
    report.Gate("pull" + std::to_string(pulled) + ".complets_moved",
                stats.complets_moved);
    report.Gate("pull" + std::to_string(pulled) + ".stream_bytes",
                stats.stream_bytes);
    Row("| %15d | %14zu | %12zu | %14llu | %13.1f |", pulled,
        stats.complets_moved, stats.stream_bytes,
        static_cast<unsigned long long>(
            w.rt.network().StatsBetween(w[0].id(), w[1].id()).messages),
        ms);
  }
  std::printf("\nShape check: data msgs A->B stays 1 regardless of group "
              "size (§3.3: \"only a single inter-Core message\").\n");
}

void RefFixupSweep(Report& report) {
  std::printf("\n-- incoming/outgoing reference fix-up: move a complet "
              "referenced by N remote cores --\n");
  TableHeader({"inbound refs", "move (sim ms)", "msgs during move",
               "1st call hops", "2nd call hops"});
  for (int watchers : {1, 4, 16, 64}) {
    World w(static_cast<std::size_t>(watchers) + 2);
    auto target = w[0].New<Message>("t");
    std::vector<core::ComletRefBase> refs;
    for (int i = 0; i < watchers; ++i)
      refs.push_back(
          w[static_cast<std::size_t>(i + 2)].RefFromHandle(target.handle()));
    w.rt.network().ResetStats();
    Section section(report, w, "fixup" + std::to_string(watchers));
    const SimTime t0 = w.rt.Now();
    w[0].Move(target, w[1].id());
    section.Commit();
    const double ms = ToMillis(w.rt.Now() - t0);
    const auto msgs = w.rt.network().total_messages();
    // A stale watcher pays one forwarding hop, then is shortened.
    core::Core& wcore = w[2];
    core::InvokeResult first =
        wcore.invocation().Invoke(refs[0].handle(), "text", {});
    w.rt.RunUntilIdle();
    core::InvokeResult second =
        wcore.invocation().Invoke(refs[0].handle(), "text", {});
    Row("| %12d | %13.1f | %16llu | %13d | %13d |", watchers, ms,
        static_cast<unsigned long long>(msgs), first.hops, second.hops);
  }
  std::printf("\nShape check: move cost is independent of the number of "
              "inbound references (incoming refs are fixed by repointing "
              "ONE local tracker, §3.3).\n");
}

void RacingInvocationsTable(Report& report) {
  std::printf("\n-- invocations racing a slow migration stream (parked at "
              "the destination, §3.3 transit consistency) --\n");
  TableHeader({"racers", "completed", "answered at", "extra latency vs "
               "idle racer (sim ms)"});
  for (int racers : {1, 4, 16}) {
    World w(3, Millis(5), 2e5);  // 200 KB/s: a 200 KB stream takes ~1 s
    auto data = w[0].New<Data>(std::size_t{200000});
    auto client = w[2].RefTo<Data>(data.handle());

    int completed = 0;
    SimTime last_done = 0;
    for (int i = 0; i < racers; ++i) {
      // fargolint: allow(capture-ref) client/completed/last_done and the World all outlive the RunUntilIdle below in this same scope
      w.rt.scheduler().ScheduleAfter(Millis(1 + i), [&] {
        if (client.Invoke<std::int64_t>("read") == 200000) ++completed;
        last_done = w.rt.Now();
      });
    }
    Section section(report, w, "race" + std::to_string(racers));
    const SimTime t0 = w.rt.Now();
    w[0].Move(data, w[1].id());
    w.rt.RunUntilIdle();
    section.Commit();
    report.Gate("race" + std::to_string(racers) + ".completed",
                static_cast<std::uint64_t>(completed));
    core::Core* at = w[1].repository().Contains(data.target()) ? &w[1] : &w[0];
    // An idle racer would pay one round trip (~10ms); the racers waited
    // for the stream instead.
    Row("| %6d | %9d | %-11s | %27.1f |", racers, completed,
        at->name().c_str(), ToMillis(last_done - t0) - 10.0);
  }
  std::printf("\nShape check: every racer completes exactly once, against "
              "the POST-move complet (requests parked at the destination "
              "until the stream lands — never lost, never doubled).\n");
}

}  // namespace

int main() {
  Report report("movement");
  std::printf("== E2: movement under layout constraints (§3.3) ==\n\n");
  ClosureSizeSweep(report);
  PullGroupSweep(report);
  RefFixupSweep(report);
  RacingInvocationsTable(report);
  report.Write();
  return 0;
}
