// E1 (Fig 2, §3.1): tracker chains — invocation cost vs chain length,
// automatic shortening, and tracker garbage collection.
//
// Expected shape: first-invocation latency grows linearly with the chain
// (one WAN hop per tracker) and collapses to a single round trip afterwards;
// every tracker left unpointed after shortening is reclaimable.
#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

int main() {
  Report report("chains");
  std::printf("== E1: tracker chains (Fig 2, §3.1) ==\n");
  std::printf("WAN: 10 ms per hop, 10 Mbit/s; complet moved N times before "
              "first call from a stale observer\n\n");
  TableHeader({"chain len", "1st call (sim ms)", "1st hops", "1st msgs",
               "2nd call (sim ms)", "2nd hops", "gc'd trackers"});

  for (int n : {0, 1, 2, 4, 8, 16, 32}) {
    World w(n + 2);
    core::Core& origin = w[0];
    core::Core& observer_core = w[static_cast<std::size_t>(n + 1)];

    auto beta = origin.New<Message>("beta");
    auto observer = observer_core.RefTo<Message>(beta.handle());
    // Build the chain: move hop by hop via local move commands so nobody's
    // knowledge is refreshed.
    for (int i = 0; i < n; ++i)
      w[static_cast<std::size_t>(i)].MoveId(
          beta.target(), w[static_cast<std::size_t>(i + 1)].id());

    w.rt.network().ResetStats();
    Section section(report, w, "chain" + std::to_string(n));
    SimTime t0 = w.rt.Now();
    core::InvokeResult first =
        observer_core.invocation().Invoke(observer.handle(), "text", {});
    const double first_ms = ToMillis(w.rt.Now() - t0);
    const auto first_msgs = w.rt.network().total_messages();
    w.rt.RunUntilIdle();  // let shortening updates land

    t0 = w.rt.Now();
    core::InvokeResult second =
        observer_core.invocation().Invoke(observer.handle(), "text", {});
    const double second_ms = ToMillis(w.rt.Now() - t0);
    section.Commit();

    // After shortening, all intermediate trackers are unpointed; release
    // the origin stub so its tracker is collectable too.
    beta.Reset();
    std::size_t gcd = 0;
    for (core::Core* c : w.rt.Cores()) gcd += c->trackers().CollectGarbage();
    report.Gate("chain" + std::to_string(n) + ".first_hops",
                static_cast<std::uint64_t>(first.hops));
    report.Gate("chain" + std::to_string(n) + ".second_hops",
                static_cast<std::uint64_t>(second.hops));

    Row("| %9d | %17.1f | %8d | %8llu | %17.1f | %8d | %13zu |", n, first_ms,
        first.hops, static_cast<unsigned long long>(first_msgs), second_ms,
        second.hops, gcd);
  }

  std::printf("\nShape check: 1st-call latency ~ 10ms x (hops+1); 2nd call "
              "is always one round trip (2 messages), independent of "
              "history.\n");

  // Ablation: the same sweep with automatic shortening disabled — the
  // design choice §3.1 motivates.
  std::printf("\n-- ablation: chain shortening disabled --\n");
  TableHeader({"chain len", "1st call (sim ms)", "5th call (sim ms)",
               "5th hops"});
  for (int n : {1, 4, 16}) {
    World w(n + 2);
    for (core::Core* c : w.rt.Cores())
      c->invocation().SetChainShortening(false);
    auto beta = w[0].New<Message>("beta");
    core::Core& oc = *w.cores[static_cast<std::size_t>(n + 1)];
    auto observer = oc.RefTo<Message>(beta.handle());
    for (int i = 0; i < n; ++i)
      w[static_cast<std::size_t>(i)].MoveId(
          beta.target(), w[static_cast<std::size_t>(i + 1)].id());

    Section section(report, w, "noshort" + std::to_string(n));
    SimTime t0 = w.rt.Now();
    oc.invocation().Invoke(observer.handle(), "text", {});
    const double first_ms = ToMillis(w.rt.Now() - t0);
    core::InvokeResult fifth{};
    double fifth_ms = 0;
    for (int k = 0; k < 4; ++k) {
      t0 = w.rt.Now();
      fifth = oc.invocation().Invoke(observer.handle(), "text", {});
      fifth_ms = ToMillis(w.rt.Now() - t0);
    }
    section.Commit();
    Row("| %9d | %17.1f | %17.1f | %8d |", n, first_ms, fifth_ms, fifth.hops);
  }
  std::printf("\nShape check: without shortening EVERY call pays the full "
              "chain, forever — the cost the automatic shortening "
              "eliminates.\n");
  report.Write();
  return 0;
}
