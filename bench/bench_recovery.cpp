// E14 (durability): the cost of the write-ahead log and the cost of coming
// back from the dead.
//
// Three tables:
//   - logging overhead: the same invocation stream against a volatile and a
//     durable Core — extra simulated time (fsync barriers on the reply
//     path), WAL records/bytes, fsyncs
//   - recovery: crash + restart with a cold log (full replay) vs a
//     checkpointed log (image + short tail) — records replayed, recovery
//     time in simulated ns, log bytes pinned on disk
//   - in-doubt resolution: crash the source mid-move; recovery queries the
//     destination and settles the transaction — time and messages to reach
//     exactly-one-copy again
#include <benchmark/benchmark.h>

#include "bench/support.h"
#include "src/core/wal.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

struct OverheadResult {
  std::uint64_t sim_ns = 0;
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t fsyncs = 0;
};

/// `ops` invocations from core0 against a Counter on core1; core1 is
/// durable when `durable` is set. Gates the standard profile plus the
/// disk-side costs under `<prefix>.*`.
OverheadResult RunLoggingSweep(bool durable, int ops, Report& report,
                               const std::string& prefix) {
  World w(2, Millis(5), 1e7);
  if (durable) w[1].EnableWal(/*checkpoint_interval=*/0);
  auto target = w[1].New<Counter>();
  auto ref = w[0].RefTo<Counter>(target.handle());
  w.rt.RunUntilIdle();

  OverheadResult r;
  const SimTime t0 = w.rt.Now();
  const std::uint64_t fsyncs0 = w.rt.storage().stats().fsyncs;
  Section section(report, w, prefix);
  for (int i = 0; i < ops; ++i) ref.Invoke<std::int64_t>("increment");
  w.rt.RunUntilIdle();
  section.Commit();
  r.sim_ns = static_cast<std::uint64_t>(w.rt.Now() - t0);
  if (core::Wal* wal = w[1].wal()) {
    r.wal_records = wal->records_appended();
    r.wal_bytes = wal->bytes_appended();
  }
  r.fsyncs = w.rt.storage().stats().fsyncs - fsyncs0;
  report.Gate(prefix + ".wal_records", r.wal_records);
  report.Gate(prefix + ".wal_bytes", r.wal_bytes);
  report.Gate(prefix + ".fsyncs", r.fsyncs);
  return r;
}

struct RecoveryResult {
  std::uint64_t replay_records = 0;
  std::uint64_t recovery_ns = 0;
  std::uint64_t durable_records = 0;
  std::uint64_t durable_bytes = 0;
  std::uint64_t checkpoints = 0;
};

/// `ops` durable invocations, then crash + restart core1 and measure the
/// replay. `checkpoint_interval` 0 replays the whole log; > 0 replays an
/// image plus a short tail. Paced so checkpoints actually fire mid-run.
RecoveryResult RunRecovery(SimTime checkpoint_interval, int ops,
                           Report& report, const std::string& prefix) {
  World w(2, Millis(5), 1e7);
  w[1].EnableWal(checkpoint_interval);
  auto target = w[1].New<Counter>();
  auto ref = w[0].RefTo<Counter>(target.handle());
  for (int i = 0; i < ops; ++i) {
    ref.Invoke<std::int64_t>("increment");
    // Let armed checkpoints land between bursts.
    if (i % 100 == 99) w.rt.RunFor(Millis(120));
  }
  w.rt.RunUntilIdle();

  RecoveryResult r;
  core::Wal* wal = w[1].wal();
  r.durable_records = wal->durable_records();
  r.durable_bytes = wal->durable_bytes();
  r.checkpoints = wal->checkpoints();

  w[1].Crash();
  w.rt.RunFor(Millis(10));
  Section section(report, w, prefix);
  const SimTime t0 = w.rt.Now();
  w[1].Restart();
  // Recovery time = restart until the Core serves again with full state
  // (replay plus the first post-restart request/reply round trip).
  if (ref.Invoke<std::int64_t>("get") != ops) std::abort();
  r.recovery_ns = static_cast<std::uint64_t>(w.rt.Now() - t0);
  w.rt.RunUntilIdle();
  section.Commit();
  r.replay_records = wal->records_replayed();
  report.Gate(prefix + ".replay_records", r.replay_records);
  report.Gate(prefix + ".recovery_ns", r.recovery_ns);
  report.Gate(prefix + ".wal_bytes", r.durable_bytes);
  return r;
}

/// Crash the source mid-move; recovery resolves the in-doubt transaction
/// against the destination. Measures restart → exactly-one-copy.
void RunInDoubt(Report& report) {
  World w(2, Millis(5), 1e7);
  w[0].SetRpcTimeout(Millis(200));
  w[1].SetRpcTimeout(Millis(200));
  w[0].EnableWal(0);
  w[1].EnableWal(0);
  auto target = w[0].New<Counter>();
  w[0].RefTo<Counter>(target.handle()).Invoke<std::int64_t>("increment");
  w.rt.RunUntilIdle();

  w[0].MoveAsync(target, w[1].id());
  w.rt.RunFor(Millis(4));  // prepare durable, stream in flight
  w[0].Crash();
  w.rt.RunFor(Millis(10));
  Section section(report, w, "indoubt");
  const SimTime t0 = w.rt.Now();
  w[0].Restart();
  w.rt.RunUntilIdle();
  section.Commit();
  const std::uint64_t ns = static_cast<std::uint64_t>(w.rt.Now() - t0);
  const int copies = (w[0].repository().Contains(target.target()) ? 1 : 0) +
                     (w[1].repository().Contains(target.target()) ? 1 : 0);
  if (copies != 1 || w[0].wal()->open_txns() != 0) std::abort();
  report.Gate("indoubt.recovery_ns", ns);
  std::printf("\n-- in-doubt move resolution (source crash mid-move) --\n");
  Row("recovered to exactly one copy in %.2f ms simulated", ns / 1e6);
}

void Tables(Report& report) {
  const int kOps = 1000;
  std::printf("\n-- WAL logging overhead (%d invocations, 5 ms links) --\n",
              kOps);
  TableHeader({"core1", "sim ms", "wal records", "wal KB", "fsyncs"});
  const OverheadResult vol =
      RunLoggingSweep(false, kOps, report, "volatile_ops");
  Row("| volatile | %6.1f | %11llu | %6.1f | %6llu |", vol.sim_ns / 1e6,
      static_cast<unsigned long long>(vol.wal_records), vol.wal_bytes / 1024.0,
      static_cast<unsigned long long>(vol.fsyncs));
  const OverheadResult dur =
      RunLoggingSweep(true, kOps, report, "durable_ops");
  Row("| durable  | %6.1f | %11llu | %6.1f | %6llu |", dur.sim_ns / 1e6,
      static_cast<unsigned long long>(dur.wal_records), dur.wal_bytes / 1024.0,
      static_cast<unsigned long long>(dur.fsyncs));
  std::printf(
      "\ndurability costs one fsync barrier per reply (latency, not\n"
      "goodput: barriers coalesce under pipelining) plus the log itself.\n");

  std::printf("\n-- recovery: full replay vs checkpoint + tail (%d ops) --\n",
              kOps);
  TableHeader({"log", "on disk", "KB", "ckpts", "replayed", "recovery ms"});
  const RecoveryResult cold = RunRecovery(0, kOps, report, "recovery_cold");
  Row("| cold         | %7llu | %5.1f | %5llu | %8llu | %11.2f |",
      static_cast<unsigned long long>(cold.durable_records),
      cold.durable_bytes / 1024.0,
      static_cast<unsigned long long>(cold.checkpoints),
      static_cast<unsigned long long>(cold.replay_records),
      cold.recovery_ns / 1e6);
  const RecoveryResult ckpt =
      RunRecovery(Millis(100), kOps, report, "recovery_ckpt");
  Row("| checkpointed | %7llu | %5.1f | %5llu | %8llu | %11.2f |",
      static_cast<unsigned long long>(ckpt.durable_records),
      ckpt.durable_bytes / 1024.0,
      static_cast<unsigned long long>(ckpt.checkpoints),
      static_cast<unsigned long long>(ckpt.replay_records),
      ckpt.recovery_ns / 1e6);
  std::printf(
      "\ncheckpointing trades periodic image writes for a bounded log tail:\n"
      "replay length (and recovery time) stops growing with history.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Report report("recovery");
  Tables(report);
  RunInDoubt(report);
  if (!DeterministicMode()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  report.Write();
  return 0;
}
