// E9 (ablation, §7 future work): tracker chains vs the location-independent
// home-registry naming scheme.
//
// The paper tracks moving complets with chains and names "a global
// location-independent naming scheme" as future work ("an alternative to
// tracking complet objects using chains"). This bench quantifies the trade:
//   - chains: zero bookkeeping messages per move, but a stale reference
//     pays one hop per former host, and a crashed hop severs the route;
//   - home registry: one extra (async) message per move, stale references
//     resolve in at most home-query + one hop, crashes are survivable.
#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

void MoveOverheadTable(Report& report) {
  std::printf("-- bookkeeping cost per move --\n");
  TableHeader({"scheme", "msgs per move", "move (sim ms)"});
  for (bool home : {false, true}) {
    World w(3);
    w.rt.EnableHomeRegistry(home);
    auto msg = w[1].New<Message>("m");  // home is core1
    w.rt.network().ResetStats();
    const SimTime t0 = w.rt.Now();
    const int moves = 10;
    for (int i = 0; i < moves; ++i) {
      core::Core& from = *w.cores[1 + (i % 2)];
      core::Core& to = *w.cores[1 + ((i + 1) % 2)];
      from.MoveId(msg.target(), to.id());
    }
    w.rt.RunUntilIdle();
    const std::string pre =
        std::string("moves.") + (home ? "registry" : "chains");
    report.Gate(pre + ".msgs", w.rt.network().total_messages());
    report.Gate(pre + ".sim_ns", static_cast<std::uint64_t>(w.rt.Now() - t0));
    Row("| %-13s | %13.1f | %13.1f |", home ? "home registry" : "chains",
        static_cast<double>(w.rt.network().total_messages()) / moves,
        ToMillis(w.rt.Now() - t0) / moves);
  }
  std::printf("\nShape check: the registry costs +1 message per move that "
              "lands away from home (the async home update; arrivals at the "
              "home itself are recorded locally); move latency is unchanged "
              "(the update is off the critical path).\n");
}

void StaleResolutionTable(Report& report) {
  std::printf("\n-- stale reference: first-call cost after N moves --\n");
  TableHeader({"scheme", "moves", "1st call (sim ms)", "1st call hops"});
  for (bool home : {false, true}) {
    for (int n : {2, 8, 16}) {
      World w(n + 2);
      w.rt.EnableHomeRegistry(home);
      auto beta = w[0].New<Message>("beta");
      auto observer =
          w[static_cast<std::size_t>(n + 1)].RefTo<Message>(beta.handle());
      for (int i = 0; i < n; ++i)
        w[static_cast<std::size_t>(i)].MoveId(
            beta.target(), w[static_cast<std::size_t>(i + 1)].id());
      w.rt.RunUntilIdle();
      core::Core& oc = *w.cores[static_cast<std::size_t>(n + 1)];
      // With the registry, resolve through the home first — the pattern a
      // registry-based runtime would use for cold references.
      SimTime t0 = w.rt.Now();
      if (home) {
        CoreId where = oc.LocateViaHome(beta.target());
        oc.trackers().SetForward(beta.target(), where, "test.Message");
      }
      core::InvokeResult r =
          oc.invocation().Invoke(observer.handle(), "text", {});
      const std::string pre = std::string("stale.") +
                              (home ? "registry" : "chains") +
                              std::to_string(n);
      report.Gate(pre + ".sim_ns",
                  static_cast<std::uint64_t>(w.rt.Now() - t0));
      report.Gate(pre + ".hops", static_cast<std::uint64_t>(r.hops));
      Row("| %-13s | %5d | %17.1f | %13d |",
          home ? "home registry" : "chains", n, ToMillis(w.rt.Now() - t0),
          r.hops);
    }
  }
  std::printf("\nShape check: chains pay ~10 ms per former host once; the "
              "registry pays one fixed home round trip regardless of "
              "history.\n");
}

void CrashSurvivalTable(Report& report) {
  std::printf("\n-- crash of an intermediate hop: does a stale reference "
              "survive? --\n");
  TableHeader({"scheme", "outcome", "recovery (sim ms)"});
  for (bool home : {false, true}) {
    World w(4);
    w.rt.EnableHomeRegistry(home);
    auto beta = w[0].New<Message>("beta");
    w[0].Move(beta, w[1].id());
    auto observer = w[3].RefTo<Message>(beta.handle());
    observer.Call("print");  // observer -> core1, directly
    w[1].MoveId(beta.target(), w[2].id());
    w.rt.RunUntilIdle();
    w[1].Crash();
    w[3].SetRpcTimeout(Millis(200));
    const SimTime t0 = w.rt.Now();
    const char* outcome;
    try {
      observer.Call("text");
      outcome = "recovered";
    } catch (const UnreachableError&) {
      outcome = "SEVERED";
    }
    report.Gate(std::string("crash.") + (home ? "registry" : "chains") +
                    ".recovered",
                std::string(outcome) == "recovered" ? 1 : 0);
    Row("| %-13s | %-9s | %17.1f |", home ? "home registry" : "chains",
        outcome, ToMillis(w.rt.Now() - t0));
  }
  std::printf("\nShape check: chains lose the route (after the timeout); "
              "the registry re-routes via the home and answers.\n");
}

}  // namespace

int main() {
  Report report("naming");
  std::printf("== E9 (ablation): chains vs location-independent naming "
              "(§7) ==\n\n");
  MoveOverheadTable(report);
  StaleResolutionTable(report);
  CrashSurvivalTable(report);
  report.Write();
  return 0;
}
