// E7 (§2, §3.3): what each reference type costs at movement time, and what
// it buys afterwards.
//
// worker --[type]--> data(16 KiB); the worker moves across a 10ms/10Mbit
// WAN link; we report the stream, the resulting layout, and the worker's
// post-move access latency to its data source.
#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

int main() {
  Report report("reftypes");
  std::printf("== E7: reference-type semantics at movement (§2, §3.3) ==\n\n");
  TableHeader({"ref type", "stream bytes", "moved", "dup'd",
               "data left behind", "post-move access (sim ms)",
               "state shared"});

  for (const char* kind : {"link", "pull", "duplicate", "stamp"}) {
    World w(2);
    // A stand-in device of the data's type at the destination, so stamp can
    // re-bind ("reconnect to a local printer", §2).
    auto dest_device = w[1].New<Data>(std::size_t{64});
    auto worker = w[0].New<Worker>();
    auto data = w[0].New<Data>(std::size_t{16384});
    worker.Call("bind", {Value(data.handle()), Value(kind)});
    data.Call("read");  // original has state: reads == 1

    w.rt.network().ResetStats();
    Section section(report, w, kind);
    w[0].Move(worker, w[1].id());
    section.Commit();
    const auto& stats = w[0].movement().last_move_stats();
    report.Gate(std::string(kind) + ".stream_bytes", stats.stream_bytes);
    report.Gate(std::string(kind) + ".complets_moved", stats.complets_moved);
    report.Gate(std::string(kind) + ".complets_duplicated",
                stats.complets_duplicated);

    // Worker's access latency to its data source after the move, measured
    // from a client at the destination core (pure access cost).
    auto client = w[1].RefFromHandle(worker.handle());
    const SimTime t0 = w.rt.Now();
    client.Call("work");
    const double access_ms = ToMillis(w.rt.Now() - t0);

    const bool left_behind = w[0].repository().Contains(data.target());
    // Shared state check: did the worker's source see the read counter of
    // the original (pull keeps identity; duplicate forked it; stamp
    // re-bound to an unrelated complet)?
    const std::int64_t original_reads = data.Invoke<std::int64_t>("reads");
    const bool shares_state = original_reads >= 2;

    Row("| %-9s | %12zu | %5zu | %5zu | %-16s | %25.1f | %-12s |", kind,
        stats.stream_bytes, stats.complets_moved, stats.complets_duplicated,
        left_behind ? "yes" : "no", access_ms,
        shares_state ? "original" : "detached");
    (void)dest_device;
  }

  std::printf(
      "\nShape check (paper §2):\n"
      "  link      — small stream, data stays, every access pays the WAN "
      "round trip, still the original complet.\n"
      "  pull      — data in the stream (+16 KiB), colocated access is "
      "free, identity preserved.\n"
      "  duplicate — data copied into the stream, original left behind, "
      "worker detaches onto its copy.\n"
      "  stamp     — only the type crosses; re-bound to the destination's "
      "equivalent complet.\n");
  report.Write();
  return 0;
}
