// E17: fargolint v2 throughput over the repository's own sources.
//
// The linter runs on every push (the `lint` CI job) and as the ctest
// `fargolint_src` check, so its wall-clock cost is developer-facing: the
// two-phase engine (symbol index + flow-aware rule families) must stay
// cheap enough to sit in the inner loop. This bench lints the checked-in
// src/, bench/ and tools/ trees in-process and reports timing as
// never-gated wallclock metrics. One deterministic metric IS gated: the
// finding count, which the lint job pins at zero — a regression here means
// a rule started firing on the tree (or stopped being suppressed) without
// the code changing.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/support.h"
#include "tools/fargolint/lint.h"

using namespace fargo;
using namespace fargo::bench;

namespace fs = std::filesystem;

namespace {

bool LintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Loads every lintable file under the repo's src/, bench/ and tools/
/// trees, sorted for a deterministic batch.
std::vector<fargolint::SourceFile> LoadTree() {
  std::vector<std::string> paths;
  for (const char* sub : {"src", "bench", "tools"}) {
    const fs::path root = fs::path(FARGO_SOURCE_DIR) / sub;
    if (!fs::exists(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root))
      if (entry.is_regular_file() && LintableExtension(entry.path()))
        paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<fargolint::SourceFile> files;
  for (const std::string& p : paths) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({p, ss.str()});
  }
  return files;
}

}  // namespace

int main() {
  Report report("lint");
  std::printf("== E17: fargolint v2 over the repository sources ==\n");

  const std::vector<fargolint::SourceFile> files = LoadTree();
  std::size_t bytes = 0;
  for (const auto& f : files) bytes += f.content.size();

  // One counted run: the tree must be clean (the lint CI job enforces it;
  // this gate catches a rule regression that starts firing without a code
  // change — deterministically, on both compilers).
  const std::vector<fargolint::Finding> findings = fargolint::Lint(files);
  report.Gate("findings", findings.size());

  TableHeader({"metric", "value"});
  Row("| %-12s | %10zu |", "files", files.size());
  Row("| %-12s | %10zu |", "bytes", bytes);
  Row("| %-12s | %10zu |", "findings", findings.size());

  if (!DeterministicMode()) {
    // Timed runs: full pipeline (lex + index + all rule families) per
    // iteration, reported as wallclock only.
    constexpr int kReps = 10;
    // fargolint: allow(wallclock) host-clock Info() metric, never gated; this branch is skipped in deterministic mode
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t sink = 0;
    for (int i = 0; i < kReps; ++i) sink += fargolint::Lint(files).size();
    // fargolint: allow(wallclock) host-clock Info() metric, never gated; this branch is skipped in deterministic mode
    const auto dt = std::chrono::steady_clock::now() - t0;
    const double ms =
        std::chrono::duration<double, std::milli>(dt).count() / kReps;
    report.Info("lint_ms", ms);
    report.Info("mb_per_s",
                ms > 0 ? (static_cast<double>(bytes) / 1e6) / (ms / 1e3) : 0);
    Row("| %-12s | %10.2f |", "lint (ms)", ms);
    if (sink != findings.size() * kReps)
      std::printf("[bench] WARNING: lint was not stable across reps\n");
  }
  report.Write();
  return 0;
}
