// E10 (robustness): invocation latency and goodput under injected message
// loss, with and without the at-most-once retry machinery.
//
// Two tables over loss rates {0, 1, 5, 10}%:
//   - simulated time: mean latency of successful invocations, goodput
//     (successes per simulated second), messages per success, retries
//   - the same sweep with retries disabled, showing the failure rate the
//     retry layer absorbs
#include <benchmark/benchmark.h>

#include "bench/support.h"
#include "src/net/chaos.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

struct SweepResult {
  int successes = 0;
  int failures = 0;
  double mean_latency_ms = 0;
  double msgs_per_success = 0;
  std::uint64_t retries = 0;
  std::uint64_t replays = 0;
};

SweepResult RunSweep(double loss, bool with_retries, int ops,
                     std::uint64_t seed, Report& report,
                     const std::string& prefix) {
  World w(2, Millis(5), 1e7);
  w[0].SetRpcTimeout(Millis(100));
  w[1].SetRpcTimeout(Millis(100));
  if (with_retries) {
    core::RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff = Millis(10);
    policy.seed = seed;
    w[0].SetRetryPolicy(policy);
  }
  if (loss > 0) {
    net::FaultPlan plan;
    plan.seed = seed;
    plan.drop = loss;
    w.rt.network().SetFaultPlan(plan);
  }

  auto target = w[1].New<Counter>();
  auto ref = w[0].RefTo<Counter>(target.handle());

  Section section(report, w, prefix);
  SweepResult r;
  double latency_sum_ms = 0;
  for (int i = 0; i < ops; ++i) {
    const SimTime start = w.rt.scheduler().Now();
    try {
      ref.Invoke<std::int64_t>("increment");
      ++r.successes;
      latency_sum_ms +=
          static_cast<double>(w.rt.scheduler().Now() - start) / 1e6;
    } catch (const FargoError&) {
      ++r.failures;
    }
  }
  w.rt.RunUntilIdle();
  section.Commit();
  if (r.successes > 0) {
    r.mean_latency_ms = latency_sum_ms / r.successes;
    r.msgs_per_success =
        static_cast<double>(w.rt.network().total_messages()) / r.successes;
  }
  r.retries = w[0].rpc_retries();
  r.replays = w[1].replay().replays();
  report.Gate(prefix + ".ok", static_cast<std::uint64_t>(r.successes));
  report.Gate(prefix + ".failed", static_cast<std::uint64_t>(r.failures));
  report.Gate(prefix + ".resends", r.retries);
  report.Gate(prefix + ".replays", r.replays);
  return r;
}

void LossSweepTable(Report& report) {
  const int kOps = 2000;
  std::printf("\n-- invocation under message loss (%d ops, 2 cores, "
              "5 ms links) --\n", kOps);
  TableHeader({"loss", "retries", "ok", "failed", "mean lat (ms)",
               "msgs/ok", "resends", "replays"});
  for (double loss : {0.0, 0.01, 0.05, 0.10}) {
    for (bool with_retries : {false, true}) {
      const std::string prefix =
          "loss" + std::to_string(static_cast<int>(loss * 100)) +
          (with_retries ? "_retry" : "_oneshot");
      const SweepResult r =
          RunSweep(loss, with_retries, kOps, /*seed=*/97, report, prefix);
      Row("| %4.0f%% | %s | %5d | %6d | %13.2f | %7.2f | %7llu | %13llu |",
          loss * 100, with_retries ? "  on " : " off ", r.successes,
          r.failures, r.mean_latency_ms, r.msgs_per_success,
          static_cast<unsigned long long>(r.retries),
          static_cast<unsigned long long>(r.replays));
    }
  }
  std::printf(
      "\nretries trade extra messages and tail latency for goodput: at 10%%\n"
      "loss a single-shot RPC fails ~19%% of the time (either leg), while\n"
      "5 attempts with backoff push the failure rate to ~0 at ~1.3x the\n"
      "messages. replays = duplicate executions prevented.\n");
}

// Wall-clock overhead of the chaos decision path itself (hot Send path).
void BM_SendNoChaos(benchmark::State& state) {
  World w(2);
  auto target = w[1].New<Counter>();
  auto ref = w[0].RefTo<Counter>(target.handle());
  for (auto _ : state) benchmark::DoNotOptimize(ref.Call("get"));
}
BENCHMARK(BM_SendNoChaos);

void BM_SendChaosArmedNoFaults(benchmark::State& state) {
  World w(2);
  net::FaultPlan plan;  // armed, but all probabilities zero
  w.rt.network().SetFaultPlan(plan);
  auto target = w[1].New<Counter>();
  auto ref = w[0].RefTo<Counter>(target.handle());
  for (auto _ : state) benchmark::DoNotOptimize(ref.Call("get"));
}
BENCHMARK(BM_SendChaosArmedNoFaults);

}  // namespace

int main(int argc, char** argv) {
  Report report("faults");
  LossSweepTable(report);
  if (!DeterministicMode()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  report.Write();
  return 0;
}
