// E18: FARGO_PARALLEL locality-engine scaling.
//
// Wall-clock only — the whole point of the locality engine is host-CPU
// parallelism, which is exactly the thing the deterministic gate must not
// measure. Every metric here is Info() (never gated); the acceptance shape
// (>= 2x from 1 to 4 localities on the engine workload) is printed for the
// CI artifact, not enforced. bench/baselines/BENCH_parallel.json keeps an
// empty gated set so benchgate treats the file as a schema anchor only.
//
// Two layers:
//   engine.*   ParallelScheduler alone: CPU-bound tasks fanned across 8
//              affinity keys, conservative rounds, no runtime on top.
//   invoke.*   the full runtime: cross-core invocations executed at each
//              owner Core's home locality (request work parallelises;
//              the conductor's pump and the network mutex do not).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench/support.h"
#include "src/sim/parallel_sched.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

constexpr int kAffinities = 8;     // Cores-worth of affinity keys
constexpr int kEngineTasks = 256;  // per engine run
constexpr int kSpinIters = 60000;  // ~100us of splitmix64 per task
constexpr int kInvokesPerCore = 150;
constexpr std::size_t kResizeBytes = 262144;

/// Seed-deterministic CPU burn; the sink defeats dead-code elimination.
std::uint64_t Spin(std::uint64_t seed) {
  std::uint64_t x = seed;
  std::uint64_t acc = 0;
  for (int i = 0; i < kSpinIters; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    acc ^= z ^ (z >> 31);
  }
  return acc;
}

double EngineRunMs(int localities) {
  sim::ParallelScheduler sched(localities);
  std::atomic<std::uint64_t> sink{0};
  std::atomic<int> done{0};
  for (int i = 0; i < kEngineTasks; ++i)
    sched.Post(static_cast<std::uint64_t>(i % kAffinities), 1, [&sink, &done, i] {
      sink.fetch_add(Spin(static_cast<std::uint64_t>(i)),
                     std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  // fargolint: allow(wallclock) host-clock Info() metric, never gated
  const auto t0 = std::chrono::steady_clock::now();
  sched.RunUntilIdle();
  // fargolint: allow(wallclock) host-clock Info() metric, never gated
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (done.load() != kEngineTasks) std::abort();  // lost work = bogus numbers
  return std::chrono::duration<double, std::milli>(dt).count();
}

/// Cross-core invocations: Data lives on core i, the caller refs it from
/// core (i+1)%8, so every "resize" executes at the owner's home locality.
double InvokeRunMs(int localities, bool print_telemetry = false) {
  core::Runtime rt(core::RuntimeOptions{localities});
  testing::RegisterTestComlets();
  std::vector<core::Core*> cores;
  for (int i = 0; i < kAffinities; ++i)
    cores.push_back(&rt.CreateCore("core" + std::to_string(i)));
  rt.network().SetDefaultLink({Millis(1), 1.25e8, true});
  std::vector<core::ComletRef<Data>> owned, remote;
  for (int i = 0; i < kAffinities; ++i)
    owned.push_back(cores[static_cast<std::size_t>(i)]->New<Data>());
  for (int i = 0; i < kAffinities; ++i)
    remote.push_back(cores[static_cast<std::size_t>((i + 1) % kAffinities)]
                         ->RefTo<Data>(owned[static_cast<std::size_t>(i)]
                                           .handle()));
  rt.RunUntilIdle();  // settle tracker setup outside the timed region

  std::vector<sim::Future<Value>> futures;
  futures.reserve(static_cast<std::size_t>(kAffinities * kInvokesPerCore));
  // fargolint: allow(wallclock) host-clock Info() metric, never gated
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kInvokesPerCore; ++round)
    for (auto& ref : remote)
      futures.push_back(ref.InvokeAsync(
          "resize", static_cast<std::int64_t>(kResizeBytes)));
  rt.RunUntilIdle();
  // fargolint: allow(wallclock) host-clock Info() metric, never gated
  const auto dt = std::chrono::steady_clock::now() - t0;
  for (auto& f : futures)
    if (!f.ok()) std::abort();  // a failed invoke = bogus numbers
  if (print_telemetry && localities > 0) {
    rt.SyncSerialStats();
    const monitor::Registry& reg = rt.metrics();
    std::printf("telemetry (N=%d): handoffs=%llu overflows=%llu rounds=%llu "
                "steals=%llu max_queue_depth=%llu\n",
                localities,
                static_cast<unsigned long long>(
                    reg.CounterValue("locality.handoffs")),
                static_cast<unsigned long long>(
                    reg.CounterValue("locality.handoff_overflows")),
                static_cast<unsigned long long>(
                    reg.CounterValue("locality.rounds")),
                static_cast<unsigned long long>(
                    reg.CounterValue("locality.steals")),
                static_cast<unsigned long long>(
                    static_cast<std::uint64_t>(
                        reg.GaugeValue("locality.queue_depth"))));
  }
  return std::chrono::duration<double, std::milli>(dt).count();
}

}  // namespace

int main() {
  Report report("parallel");
  std::printf("== E18: FARGO_PARALLEL locality-engine scaling ==\n");
  // fargolint: allow(thread) reads the host cpu count for the report; spawns nothing
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host cpus: %u (wall-clock speedups are bounded by this)\n", hw);
  if (DeterministicMode()) {
    // Wall-clock is the subject here; in CI's deterministic sweep the
    // bench only proves it still builds and writes its (gate-empty) file.
    std::printf("deterministic mode: wall-clock sections skipped\n");
    report.Write();
    return 0;
  }

  std::printf("\n-- engine: %d CPU-bound tasks over %d affinities --\n",
              kEngineTasks, kAffinities);
  TableHeader({"localities", "wall ms", "speedup vs 1"});
  double engine_ms1 = 0;
  for (int n : {1, 2, 4}) {
    // Warm-up run absorbs thread spawn + first-touch costs, then report
    // the median-ish second run.
    (void)EngineRunMs(n);
    const double ms = EngineRunMs(n);
    if (n == 1) engine_ms1 = ms;
    report.Info("engine.ms_" + std::to_string(n), ms);
    Row("| %10d | %7.1f | %11.2fx |", n, ms, engine_ms1 / ms);
    if (n > 1)
      report.Info("engine.speedup_1_to_" + std::to_string(n), engine_ms1 / ms);
  }

  std::printf("\n-- runtime: %d cross-core invocations over %d cores --\n",
              kAffinities * kInvokesPerCore, kAffinities);
  TableHeader({"localities", "wall ms", "speedup vs sim"});
  double invoke_sim_ms = 0;
  for (int n : {0, 1, 2, 4}) {
    const double ms = InvokeRunMs(n, /*print_telemetry=*/n == 4);
    if (n == 0) invoke_sim_ms = ms;
    const std::string key = n == 0 ? "sim" : std::to_string(n);
    report.Info("invoke.ms_" + key, ms);
    Row("| %10s | %7.1f | %13.2fx |", key.c_str(), ms, invoke_sim_ms / ms);
    if (n == 4) report.Info("invoke.speedup_sim_to_4", invoke_sim_ms / ms);
  }

  const double speedup = engine_ms1 / EngineRunMs(4);
  std::printf("\nacceptance shape (informational, never gated): engine 1->4 "
              "localities = %.2fx -> %s\n",
              speedup,
              speedup >= 2.0       ? "PASS (>= 2x)"
              : hw < 4             ? "N/A (host has too few cpus)"
                                   : "BELOW 2x (host-dependent)");
  report.Info("host.cpus", static_cast<double>(hw));
  report.Write();
  return 0;
}
