// E3 (§3.1): cost of the stub/tracker split.
//
// The paper claims the split costs "a small price of an extra local method
// invocation" while keeping one tracker per target per Core. This bench
// measures wall-clock dispatch overhead (google-benchmark) and the
// tracker-sharing property.
#include <benchmark/benchmark.h>

#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

// Baseline: a plain virtual call on the anchor object.
void BM_DirectVirtualCall(benchmark::State& state) {
  World w(1);
  auto ref = w[0].New<Counter>();
  auto anchor = w[0].repository().Get(ref.target());
  const std::vector<Value> no_args;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor->Dispatch("get", no_args));
  }
}
BENCHMARK(BM_DirectVirtualCall);

// Core-level dispatch (repository lookup + method map).
void BM_CoreDispatchLocal(benchmark::State& state) {
  World w(1);
  auto ref = w[0].New<Counter>();
  const std::vector<Value> no_args;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w[0].DispatchLocal(ref.target(), "get", no_args));
  }
}
BENCHMARK(BM_CoreDispatchLocal);

// Full stub -> tracker -> anchor path with a colocated target: the "extra
// local method invocation" of the split.
void BM_StubCallColocated(benchmark::State& state) {
  World w(1);
  auto ref = w[0].New<Counter>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Call("get"));
  }
}
BENCHMARK(BM_StubCallColocated);

// Remote invocation through the simulated network (wall-clock cost of
// serialization + routing machinery; simulated latency costs no wall time).
void BM_StubCallRemote(benchmark::State& state) {
  World w(2);
  auto target = w[0].New<Counter>();
  auto ref = w[1].RefTo<Counter>(target.handle());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Call("get"));
  }
}
BENCHMARK(BM_StubCallRemote);

// Argument marshaling cost by payload size.
void BM_RemoteCallPayload(benchmark::State& state) {
  World w(2);
  auto target = w[0].New<Message>("m");
  auto ref = w[1].RefTo<Message>(target.handle());
  std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Call("set", {Value(payload)}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RemoteCallPayload)->Range(64, 1 << 16);

void TrackerSharingTable() {
  std::printf("\n-- one tracker per target per Core (stub fan-in) --\n");
  TableHeader({"stubs at core1", "trackers at core1", "naive proxies"});
  for (int stubs : {1, 10, 100, 1000}) {
    World w(2);
    auto target = w[0].New<Counter>();
    std::vector<core::ComletRef<Counter>> refs;
    for (int i = 0; i < stubs; ++i)
      refs.push_back(w[1].RefTo<Counter>(target.handle()));
    // A naive design keeps one remote-capable proxy per reference; FarGo
    // shares one tracker among all stubs of a Core.
    Row("| %14d | %17zu | %13d |", stubs, w[1].trackers().size(), stubs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== E3: stub/tracker indirection overhead (§3.1) ==\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  TrackerSharingTable();
  return 0;
}
