// E3 (§3.1): cost of the stub/tracker split.
//
// The paper claims the split costs "a small price of an extra local method
// invocation" while keeping one tracker per target per Core. This bench
// measures wall-clock dispatch overhead (google-benchmark) and the
// tracker-sharing property.
#include <benchmark/benchmark.h>

#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

// Baseline: a plain virtual call on the anchor object.
void BM_DirectVirtualCall(benchmark::State& state) {
  World w(1);
  auto ref = w[0].New<Counter>();
  auto anchor = w[0].repository().Get(ref.target());
  const std::vector<Value> no_args;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anchor->Dispatch("get", no_args));
  }
}
BENCHMARK(BM_DirectVirtualCall);

// Core-level dispatch (repository lookup + method map).
void BM_CoreDispatchLocal(benchmark::State& state) {
  World w(1);
  auto ref = w[0].New<Counter>();
  const std::vector<Value> no_args;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w[0].DispatchLocal(ref.target(), "get", no_args));
  }
}
BENCHMARK(BM_CoreDispatchLocal);

// Full stub -> tracker -> anchor path with a colocated target: the "extra
// local method invocation" of the split.
void BM_StubCallColocated(benchmark::State& state) {
  World w(1);
  auto ref = w[0].New<Counter>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Call("get"));
  }
}
BENCHMARK(BM_StubCallColocated);

// Remote invocation through the simulated network (wall-clock cost of
// serialization + routing machinery; simulated latency costs no wall time).
void BM_StubCallRemote(benchmark::State& state) {
  World w(2);
  auto target = w[0].New<Counter>();
  auto ref = w[1].RefTo<Counter>(target.handle());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Call("get"));
  }
}
BENCHMARK(BM_StubCallRemote);

// Argument marshaling cost by payload size.
void BM_RemoteCallPayload(benchmark::State& state) {
  World w(2);
  auto target = w[0].New<Message>("m");
  auto ref = w[1].RefTo<Message>(target.handle());
  std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Call("set", {Value(payload)}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RemoteCallPayload)->Range(64, 1 << 16);

// E12: pipelined InvokeAsync vs sequential sync Invoke over a 50 ms link.
// Sequential sync pays K round-trips; K pipelined futures share the link
// and complete in ~1 RTT + K * serialization. Simulated time, so the curve
// is deterministic and every point is gated in BENCH_invocation.json.
void PipelinedVsSyncTable(Report& report) {
  constexpr SimTime kLatency = Millis(50);
  std::printf("\n-- E12: sync loop vs pipelined InvokeAsync (50 ms link) --\n");
  TableHeader({"K", "sync (sim ms)", "pipelined (sim ms)", "speedup"});

  double single_ms = 0;
  double pipelined16_ms = 0;
  const std::vector<int> ks = {1, 2, 4, 8, 16, 32};
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const int k = ks[i];
    // Sequential sync: each Invoke pumps until its own future settles.
    double sync_ms = 0;
    {
      World w(2, kLatency);
      auto target = w[0].New<Counter>();
      auto ref = w[1].RefTo<Counter>(target.handle());
      ref.Call("get");  // warm the route so every run starts shortened
      Section section(report, w, "sync_k" + std::to_string(k));
      const SimTime t0 = w.rt.scheduler().Now();
      for (int j = 0; j < k; ++j) ref.Call("get");
      section.Commit();
      sync_ms = ToMillis(w.rt.scheduler().Now() - t0);
    }
    // Pipelined: all K requests leave before the first reply lands.
    double pipe_ms = 0;
    {
      World w(2, kLatency);
      auto target = w[0].New<Counter>();
      auto ref = w[1].RefTo<Counter>(target.handle());
      ref.Call("get");
      Section section(report, w, "pipe_k" + std::to_string(k));
      const SimTime t0 = w.rt.scheduler().Now();
      std::vector<sim::Future<Value>> futures;
      for (int j = 0; j < k; ++j)
        futures.push_back(ref.InvokeAsync("get"));
      w.rt.RunUntilIdle();
      for (auto& f : futures) (void)f.value();  // all settled, none failed
      section.Commit();
      pipe_ms = ToMillis(w.rt.scheduler().Now() - t0);
    }
    if (k == 1) single_ms = pipe_ms;
    if (k == 16) pipelined16_ms = pipe_ms;
    Row("| %4d | %13.2f | %18.2f | %6.1fx |", k, sync_ms, pipe_ms,
        sync_ms / pipe_ms);
  }
  std::printf("acceptance: 16 pipelined in %.2f ms vs single %.2f ms -> %s\n",
              pipelined16_ms, single_ms,
              pipelined16_ms < 2 * single_ms ? "PASS (< 2x single)"
                                             : "FAIL (>= 2x single)");
}

void TrackerSharingTable(Report& report) {
  std::printf("\n-- one tracker per target per Core (stub fan-in) --\n");
  TableHeader({"stubs at core1", "trackers at core1", "naive proxies"});
  for (int stubs : {1, 10, 100, 1000}) {
    World w(2);
    auto target = w[0].New<Counter>();
    std::vector<core::ComletRef<Counter>> refs;
    for (int i = 0; i < stubs; ++i)
      refs.push_back(w[1].RefTo<Counter>(target.handle()));
    // A naive design keeps one remote-capable proxy per reference; FarGo
    // shares one tracker among all stubs of a Core.
    report.Gate("trackers_for_" + std::to_string(stubs) + "_stubs",
                w[1].trackers().size());
    Row("| %14d | %17zu | %13d |", stubs, w[1].trackers().size(), stubs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Report report("invocation");
  std::printf("== E3: stub/tracker indirection overhead (§3.1) ==\n");
  if (!DeterministicMode()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  TrackerSharingTable(report);
  PipelinedVsSyncTable(report);
  report.Write();
  return 0;
}
