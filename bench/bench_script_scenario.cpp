// E6 (§4.3): the paper's example script, measured.
//
// Runs the verbatim two-rule script against a worker/data application and
// reports (a) a request-latency time series around the performance rule's
// colocation, and (b) recovery across a core shutdown under the
// reliability rule.
#include "bench/support.h"

using namespace fargo;
using namespace fargo::bench;

namespace {

const char* kPaperScript = R"(
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
)";

}  // namespace

int main() {
  Report report("script_scenario");
  std::printf("== E6: the paper's script (§4.3), verbatim ==\n\n");
  World w(4, Millis(25), 1.25e6);  // admin, host1, host2, safe
  core::Core& admin = w[0];

  auto worker = w[1].New<Worker>();
  auto data = w[2].New<Data>(std::size_t{500});
  worker.Call("bind", {Value(data.handle())});
  auto client = admin.RefFromHandle(worker.handle());

  script::Engine engine(w.rt, admin);
  engine.Run(kPaperScript,
             {Value(Value::List{
                  Value(static_cast<std::int64_t>(w[1].id().value)),
                  Value(static_cast<std::int64_t>(w[2].id().value))}),
              Value(static_cast<std::int64_t>(w[3].id().value)),
              Value(Value::List{Value(worker.handle()), Value(data.handle())})});
  std::printf("script attached: %zu rules\n\n", engine.active_rules());

  std::printf("-- performance rule: request latency while invoking ~10/s "
              "(threshold: methodInvokeRate > 3) --\n");
  TableHeader({"t (sim s)", "req latency (sim ms)", "worker at", "fired"});
  Section perf(report, w, "perf_phase");
  for (int i = 0; i < 40; ++i) {
    const SimTime t0 = w.rt.Now();
    client.Call("work");
    const double lat = ToMillis(w.rt.Now() - t0);
    w.rt.RunFor(Millis(100));
    if (i % 5 == 0) {
      core::Core* at = nullptr;
      for (core::Core* c : w.rt.Cores())
        if (c->alive() && c->repository().Contains(worker.target())) at = c;
      Row("| %9.1f | %20.1f | %-9s | %5llu |", ToSeconds(w.rt.Now()), lat,
          at != nullptr ? at->name().c_str() : "?",
          static_cast<unsigned long long>(engine.rule_firings()));
    }
  }
  perf.Commit();
  std::printf("\nShape check: latency halves once the rule colocates the "
              "worker with its data (inner round trip disappears).\n");

  std::printf("\n-- reliability rule: core2 announces shutdown --\n");
  Section recovery(report, w, "recovery_phase");
  const SimTime down_at = w.rt.Now();
  w[2].Shutdown(Millis(500));
  w.rt.RunFor(Millis(500));
  core::Core* at = nullptr;
  for (core::Core* c : w.rt.Cores())
    if (c->alive() && c->repository().Contains(worker.target())) at = c;
  TableHeader({"evacuated to", "recovery (sim ms)", "app alive"});
  SimTime t0 = w.rt.Now();
  const std::int64_t result = client.Call("work").AsInt();
  (void)t0;
  Row("| %-12s | %17.1f | %-9s |", at != nullptr ? at->name().c_str() : "?",
      ToMillis(w.rt.Now() - down_at),
      result == 500 ? "yes" : "NO");
  recovery.Commit();
  report.Gate("rule_firings", engine.rule_firings());
  report.Gate("moves_executed", engine.moves_executed());
  report.Gate("app_alive_after_recovery", result == 500 ? 1 : 0);
  std::printf("\nfirings total: %llu, script moves total: %llu\n",
              static_cast<unsigned long long>(engine.rule_firings()),
              static_cast<unsigned long long>(engine.moves_executed()));
  report.Write();
  return 0;
}
